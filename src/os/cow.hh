/**
 * @file
 * Copy-on-write across address spaces (paper Sec. III-C3).
 *
 * clone() maps every page of a parent address space into a child
 * read-only (and write-protects the parent's copies), sharing the
 * physical frames under an interval refcount.  A write to a shared page
 * raises a write-protection fault, which the manager resolves with one
 * of the paper's two strategies for large pages:
 *
 *  - CopySmallest: demote the large page and copy only the written
 *    base page, keeping the rest shared (saves copy time and memory at
 *    the cost of TLB pressure);
 *  - CopyWholePage: copy the entire large page (expensive once, but
 *    the tailored mapping survives).
 *
 * When the faulting space is the frame's last referencer, ownership
 * transfers without any copy.
 *
 * Lifecycle contract: child address spaces must be torn down before
 * the parent (shared frames belong to the parent's allocations), and a
 * child must use the policy returned by makeChildPolicy().
 */

#ifndef TPS_OS_COW_HH
#define TPS_OS_COW_HH

#include <cstdint>
#include <map>
#include <memory>

#include "os/address_space.hh"
#include "os/phys_memory.hh"

namespace tps::os {

/** How a CoW fault on a large page is resolved (Sec. III-C3). */
enum class CowCopyMode
{
    CopySmallest,   //!< demote, copy only the written base page
    CopyWholePage,  //!< copy the whole (possibly tailored) page
};

/** Interval refcounts over physical frames shared between spaces. */
class FrameRefcount
{
  public:
    /**
     * Mark [start, start+count) as shared by one more space (a new
     * range starts at a count of 2: parent + first child).
     */
    void share(Pfn start, uint64_t count);

    /**
     * One space stops referencing @p pfn.
     * @return the number of spaces still referencing it (0 if the
     *         frame was not tracked).
     */
    uint32_t release(Pfn pfn);

    /** Spaces referencing @p pfn (0 = not a shared frame). */
    uint32_t countOf(Pfn pfn) const;

    /** Number of tracked intervals (tests). */
    size_t intervals() const { return ranges_.size(); }

  private:
    /** Split the interval containing @p pfn so it starts there. */
    void splitAt(Pfn pfn);

    //! start -> (frame count, sharer count); disjoint intervals.
    std::map<Pfn, std::pair<uint64_t, uint32_t>> ranges_;
};

/** Statistics for the CoW machinery. */
struct CowStats
{
    uint64_t clonedPages = 0;
    uint64_t writeFaults = 0;
    uint64_t copies = 0;
    uint64_t copiedBytes = 0;
    uint64_t ownershipTransfers = 0;
    uint64_t demotions = 0;
};

/** The manager. */
class CowManager
{
  public:
    /**
     * @param pm    Physical memory (source of copy frames).
     * @param mode  Large-page resolution strategy.
     */
    CowManager(PhysMemory &pm, CowCopyMode mode = CowCopyMode::CopySmallest);

    /**
     * Share every mapping of @p parent into @p child (which must be
     * empty and built with makeChildPolicy()).  Both spaces'  pages
     * become read-only; the first write in either triggers resolution.
     */
    void clone(AddressSpace &parent, AddressSpace &child);

    /**
     * The paging policy a child address space must use: it never maps
     * on its own and returns shared frames to the refcount (not the
     * allocator) on teardown.
     */
    std::unique_ptr<PagingPolicy> makeChildPolicy();

    const CowStats &stats() const { return stats_; }
    FrameRefcount &refcounts() { return refs_; }

  private:
    friend class CowChildPolicy;

    /** Resolve a write fault; registered as the spaces' CoW handler. */
    bool onWriteFault(AddressSpace &as, vm::Vaddr va, bool write);

    /** Copy [*] the page at @p base into fresh frames, mapped writable. */
    bool copyPage(AddressSpace &as, vm::Vaddr base,
                  const vm::LeafInfo &leaf);

    PhysMemory &pm_;
    CowCopyMode mode_;
    FrameRefcount refs_;
    CowStats stats_;
};

} // namespace tps::os

#endif // TPS_OS_COW_HH
