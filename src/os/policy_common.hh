/**
 * @file
 * Shared machinery for reservation-based paging policies.
 *
 * Base-4K demand paging, reservation-based THP, CoLT's
 * contiguity-seeking allocation and TPS itself are all instances of one
 * scheme -- reserve a naturally aligned block, commit base pages on
 * demand, promote mappings when utilization crosses a threshold -- that
 * differ only in which block sizes may be reserved and which page sizes
 * may be promoted to.  ReservationPolicyBase implements the scheme once;
 * the concrete policies are thin configurations of it (paper
 * Sec. III-B1).
 */

#ifndef TPS_OS_POLICY_COMMON_HH
#define TPS_OS_POLICY_COMMON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "os/address_space.hh"
#include "os/policy.hh"
#include "os/vma.hh"

namespace tps::os {

/** Knobs selecting a concrete reservation policy. */
struct ReservationPolicyConfig
{
    std::string name = "reservation";
    /** Largest reservation block (log2 bytes). */
    unsigned capPageBits = vm::kPageBits2M;
    /** Blocks smaller than this are plain 4 KB demand allocations. */
    unsigned minReservationPageBits = vm::kPageBits2M;
    /** Promotion targets, ascending log2 sizes; empty = never promote. */
    std::vector<unsigned> promotionSizes;
    /** Utilization fraction required to promote (1.0 = paper default). */
    double threshold = 1.0;
    /** Map whole reservations at mmap time (eager paging). */
    bool eager = false;
    /** Cap on mmap VA alignment (log2). */
    unsigned vaAlignCap = vm::kPageBits2M;
};

/**
 * The configurable reservation/promotion policy.
 */
class ReservationPolicyBase : public PagingPolicy
{
  public:
    explicit ReservationPolicyBase(ReservationPolicyConfig cfg);

    const char *name() const override { return cfg_.name.c_str(); }
    void onMmap(AddressSpace &as, const Vma &vma) override;
    void onMunmap(AddressSpace &as, const Vma &vma) override;
    bool onFault(AddressSpace &as, vm::Vaddr va, bool write) override;
    unsigned vaAlignBits(uint64_t length) const override;

    const ReservationPolicyConfig &config() const { return cfg_; }

  protected:
    /**
     * Largest block (log2 bytes) that is naturally aligned at @p va,
     * lies fully inside @p vma, and does not exceed @p cap.
     */
    static unsigned naturalBlockBits(const Vma &vma, vm::Vaddr va,
                                     unsigned cap);

    /**
     * Create the reservation backing @p va, degrading the block size
     * under fragmentation.  @return it, or nullptr if even a minimal
     * reservation is impossible (caller falls back to demand 4 KB).
     */
    Reservation *ensureReservation(AddressSpace &as, const Vma &vma,
                                   vm::Vaddr va);

    /** Map one base page of @p resv at @p va and charge for it. */
    void commitBasePage(AddressSpace &as, const Vma &vma,
                        Reservation &resv, vm::Vaddr va);

    /** Run the promotion ladder after a commit at @p va. */
    void tryPromote(AddressSpace &as, const Vma &vma, Reservation &resv,
                    vm::Vaddr va);

    /** Map [base, base+2^bits) of @p resv as a single page. */
    void mapWhole(AddressSpace &as, const Vma &vma, Reservation &resv,
                  vm::Vaddr base, unsigned bits);

    /** Plain 4 KB demand allocation outside any reservation. */
    bool demandBasePage(AddressSpace &as, const Vma &vma, vm::Vaddr va,
                        bool write);

    ReservationPolicyConfig cfg_;
};

/** Demand 4 KB paging (the "THP disabled" configuration). */
class Base4kPolicy : public ReservationPolicyBase
{
  public:
    Base4kPolicy();
};

/**
 * Reservation-based Transparent Huge Pages: 2 MB reservations promoted
 * only at full utilization -- the paper's baseline.
 */
class ThpPolicy : public ReservationPolicyBase
{
  public:
    /** @param threshold  Promotion utilization (1.0 in the paper). */
    explicit ThpPolicy(double threshold = 1.0);
};

/** Configuration for the TPS policy. */
struct TpsPolicyConfig
{
    /** Largest tailored page/reservation (log2 bytes; <= 1 GB blocks). */
    unsigned maxPageBits = vm::kPageBits1G;
    /** Promotion utilization threshold (Sec. III-B1; 1.0 = no bloat). */
    double threshold = 1.0;
    /** Eager paging: map whole reservations at mmap (Sec. III-B1). */
    bool eager = false;
};

/** Tailored Page Sizes: every power of two from 8 KB up. */
class TpsPolicy : public ReservationPolicyBase
{
  public:
    explicit TpsPolicy(TpsPolicyConfig cfg = TpsPolicyConfig{});
};

/**
 * CoLT's OS side: contiguity comes from natural aligned-block
 * reservations, but mappings stay 4 KB (coalescing happens in the TLB).
 */
class ColtPolicy : public ReservationPolicyBase
{
  public:
    ColtPolicy();
};

} // namespace tps::os

#endif // TPS_OS_POLICY_COMMON_HH
