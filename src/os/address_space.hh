/**
 * @file
 * Per-process virtual address space: VMA bookkeeping, the page table,
 * the reservation table, and the syscall-level API (mmap/munmap/fault)
 * that workloads and the simulation engine drive.
 *
 * The address space delegates all backing decisions to its paging
 * policy.  TLB shootdowns requested by policies are forwarded to a
 * registered listener (the MMU).
 */

#ifndef TPS_OS_ADDRESS_SPACE_HH
#define TPS_OS_ADDRESS_SPACE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "os/compaction_stats.hh"
#include "os/phys_memory.hh"
#include "os/policy.hh"
#include "os/reservation.hh"
#include "os/vma.hh"
#include "util/stats.hh"
#include "vm/page_table.hh"

namespace tps::obs {
class EventTrace;
class MemTelemetry;
class StatRegistry;
} // namespace tps::obs

namespace tps::os {

/** The address space. */
class AddressSpace
{
  public:
    /** Construction knobs. */
    struct Config
    {
        vm::SizeEncoding encoding = vm::SizeEncoding::Napot;
        vm::AliasMode aliasMode = vm::AliasMode::Pointer;
        vm::Vaddr mmapBase = 0x10000000000ull;  //!< first mmap VA (1 TB)
        //! Dense page-table node residency (the sparse/dense oracle
        //! switch); host-only, never serialized into manifests.
        bool denseState = false;
    };

    /**
     * @param pm      Physical memory backing this process.
     * @param policy  Paging policy; owned by the address space.
     * @param cfg     Encoding/alias/mmap-base knobs.
     */
    AddressSpace(PhysMemory &pm, std::unique_ptr<PagingPolicy> policy,
                 Config cfg);

    /** Construct with default Config. */
    AddressSpace(PhysMemory &pm, std::unique_ptr<PagingPolicy> policy);

    ~AddressSpace();

    AddressSpace(const AddressSpace &) = delete;
    AddressSpace &operator=(const AddressSpace &) = delete;

    /**
     * Map @p length bytes (rounded up to base pages) of anonymous
     * memory.  The VA is chosen with the policy's preferred alignment.
     * @return the start address.
     */
    vm::Vaddr mmap(uint64_t length, bool writable = true);

    /** Unmap the entire VMA starting at @p start. */
    void munmap(vm::Vaddr start);

    /**
     * Demand-fault entry point (called on a translation fault).
     * @return true if the policy installed a mapping (retry), false if
     *         @p va is outside every VMA (a segfault).
     */
    bool handleFault(vm::Vaddr va, bool write);

    /** The VMA containing @p va, or nullptr. */
    const Vma *findVma(vm::Vaddr va) const;

    vm::PageTable &pageTable() { return pageTable_; }
    const vm::PageTable &pageTable() const { return pageTable_; }
    ReservationTable &reservations() { return reservations_; }
    const ReservationTable &reservations() const { return reservations_; }
    PhysMemory &phys() { return phys_; }
    const PhysMemory &phys() const { return phys_; }
    PagingPolicy &policy() { return *policy_; }
    const PagingPolicy &policy() const { return *policy_; }
    OsWork &osWork() { return osWork_; }
    const OsWork &osWork() const { return osWork_; }

    /** Request a TLB shootdown for the page containing @p va. */
    void shootdown(vm::Vaddr va);

    /** Request a full TLB flush (bulk teardown). */
    void shootdownAll();

    /** Register the shootdown listener (the MMU). */
    void
    setShootdownListener(std::function<void(vm::Vaddr)> fn)
    {
        shootdownFn_ = std::move(fn);
    }

    /** Register the full-flush listener (the MMU). */
    void
    setFlushListener(std::function<void()> fn)
    {
        flushFn_ = std::move(fn);
    }

    /**
     * Register the copy-on-write resolver, consulted by handleFault()
     * before the paging policy.  It returns true when it handled the
     * fault (a write hit a CoW-armed read-only page).
     */
    void
    setCowHandler(std::function<bool(AddressSpace &, vm::Vaddr, bool)> fn)
    {
        cowFn_ = std::move(fn);
    }

    /**
     * Register an observer fired by munmap() with the VMA's [start,
     * end) range after its pages are gone.  Host-side bookkeeping
     * keyed by VA (the MMU's A/D shadow vectors) uses this to drop
     * per-range payloads; mmap never reuses addresses, so dropping is
     * invisible to the simulation.
     */
    void
    setUnmapListener(std::function<void(vm::Vaddr, vm::Vaddr)> fn)
    {
        unmapFn_ = std::move(fn);
    }

    /**
     * Insert a VMA verbatim (used when cloning an address space for
     * copy-on-write; ordinary mappings should use mmap()).
     */
    void insertVma(const Vma &vma);

    /** Histogram of mapped page sizes: log2(size) -> page count (Fig 18). */
    Histogram pageSizeCensus() const;

    /** Bytes currently mapped, including promotion bloat (Fig 9). */
    uint64_t mappedBytes() const;

    /** Base pages demand-touched so far (4 KB-equivalent usage). */
    uint64_t touchedBasePages() const { return touchedBasePages_; }

    /** All VMAs, keyed by start (inspection). */
    const std::map<vm::Vaddr, Vma> &vmas() const { return vmas_; }

    /**
     * Register OS-side counters (OsWork under "<prefix>.work" plus any
     * policy-specific stats under "<prefix>.policy") under @p prefix.
     */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix);

    /**
     * Attach an event trace.  OS events (map/unmap/fault/reservation/
     * promotion/compaction merge) are recorded there; policies reach
     * the same stream through eventTrace().  nullptr disables.
     */
    void setEventTrace(obs::EventTrace *trace) { trace_ = trace; }
    obs::EventTrace *eventTrace() const { return trace_; }

    /**
     * Attach a physical-memory telemetry probe.  Policies and the
     * merge pass reach it through memTelemetry() to report reservation
     * lifecycle and compaction-yield events.  nullptr disables.  The
     * probe must outlive this address space: the destructor's unmaps
     * fire the release hooks too.
     */
    void setMemTelemetry(obs::MemTelemetry *tel) { memTel_ = tel; }
    obs::MemTelemetry *memTelemetry() const { return memTel_; }

    /**
     * Per-process compaction totals, accumulated by the merge pass
     * (CompactionDaemon moves driven through it included).
     */
    CompactionStats &compactionStats() { return compaction_; }
    const CompactionStats &compactionStats() const { return compaction_; }

  private:
    PhysMemory &phys_;
    std::unique_ptr<PagingPolicy> policy_;
    Config cfg_;
    vm::PageTable pageTable_;
    ReservationTable reservations_;
    std::map<vm::Vaddr, Vma> vmas_;
    /**
     * Last VMA findVma() returned.  Map nodes are stable and VMAs
     * never overlap, so "still contains the address" means "is the
     * unique answer"; fault streams with locality hit this nearly
     * every time.  Cleared by munmap().
     */
    mutable const Vma *cachedVma_ = nullptr;
    vm::Vaddr mmapCursor_;
    uint64_t nextVmaId_ = 0;
    obs::EventTrace *trace_ = nullptr;
    obs::MemTelemetry *memTel_ = nullptr;
    CompactionStats compaction_;
    OsWork osWork_;
    uint64_t touchedBasePages_ = 0;
    std::function<void(vm::Vaddr)> shootdownFn_;
    std::function<void()> flushFn_;
    std::function<void(vm::Vaddr, vm::Vaddr)> unmapFn_;
    std::function<bool(AddressSpace &, vm::Vaddr, bool)> cowFn_;
};

} // namespace tps::os

#endif // TPS_OS_ADDRESS_SPACE_HH
