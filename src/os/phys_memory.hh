/**
 * @file
 * Physical-memory manager: wraps the buddy allocator and implements the
 * page-table frame provider, with usage accounting by purpose.
 */

#ifndef TPS_OS_PHYS_MEMORY_HH
#define TPS_OS_PHYS_MEMORY_HH

#include <cstdint>
#include <optional>

#include "os/buddy_allocator.hh"
#include "vm/page_table.hh"

namespace tps::os {

/** Frame usage broken down by purpose. */
struct PhysMemoryStats
{
    uint64_t tableFrames = 0;     //!< live page-table frames
    uint64_t appFrames = 0;       //!< frames mapped into address spaces
    uint64_t reservedFrames = 0;  //!< frames parked in reservations
};

/** The physical-memory manager. */
class PhysMemory : public vm::FrameProvider
{
  public:
    /**
     * @param bytes  Physical capacity; rounded down to whole frames.
     * @param dense  Use the dense (fully materialized) buddy free-list
     *               representation instead of the sparse default; the
     *               oracle side of the sparse/dense golden tests.
     */
    explicit PhysMemory(uint64_t bytes, bool dense = false);

    /** The underlying buddy allocator. */
    BuddyAllocator &buddy() { return buddy_; }
    const BuddyAllocator &buddy() const { return buddy_; }

    // FrameProvider (page-table frames; allocation failure is fatal
    // because the simulation cannot proceed without table memory).
    vm::Pfn allocTableFrame() override;
    void freeTableFrame(vm::Pfn pfn) override;

    /** Allocate 2^@p order application frames. */
    std::optional<Pfn> allocApp(unsigned order);

    /** Free application frames. */
    void freeApp(Pfn pfn, unsigned order);

    /** Move 2^@p order frames from free to reserved (reservation). */
    std::optional<Pfn> reserve(unsigned order);

    /** Hand @p count reserved base frames over to app usage. */
    void commitReserved(uint64_t count);

    /** Return 2^@p order reserved frames to the free lists. */
    void unreserve(Pfn pfn, unsigned order);

    /**
     * Free a whole reservation block of which @p committed_pages frames
     * had been committed to app use (the rest were still reserved).
     */
    void freeReservationBlock(Pfn pfn, unsigned order,
                              uint64_t committed_pages);

    uint64_t totalBytes() const;
    uint64_t freeBytes() const;
    const PhysMemoryStats &stats() const { return stats_; }

  private:
    BuddyAllocator buddy_;
    PhysMemoryStats stats_;
};

} // namespace tps::os

#endif // TPS_OS_PHYS_MEMORY_HH
