#include "os/fragmenter.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace tps::os {

Fragmenter::Fragmenter(PhysMemory &pm, FragmenterConfig cfg)
    : pm_(pm), cfg_(cfg), rng_(cfg.seed, 0x777)
{
    tps_assert(cfg_.targetFreeFraction > 0.0 &&
               cfg_.targetFreeFraction < 1.0);
    tps_assert(cfg_.maxBlockOrder <= BuddyAllocator::kMaxOrder);
}

unsigned
Fragmenter::sampleOrder()
{
    // Geometric-ish skew: P(order) ~ smallBias^-order.
    double u = rng_.uniform();
    double p = 1.0;
    double norm = 0.0;
    for (unsigned o = 0; o <= cfg_.maxBlockOrder; ++o) {
        norm += p;
        p /= cfg_.smallBias;
    }
    p = 1.0;
    double acc = 0.0;
    for (unsigned o = 0; o <= cfg_.maxBlockOrder; ++o) {
        acc += p / norm;
        if (u < acc)
            return o;
        p /= cfg_.smallBias;
    }
    return 0;
}

void
Fragmenter::run()
{
    BuddyAllocator &buddy = pm_.buddy();
    uint64_t total = buddy.totalFrames();
    auto free_fraction = [&] {
        return static_cast<double>(buddy.freeFrames()) /
               static_cast<double>(total);
    };

    // Phase 1: fill memory *completely* with skewed-size allocations,
    // so the frees of phase 2/3 scatter holes across all of it rather
    // than leaving a pristine contiguous tail.
    for (;;) {
        unsigned order = sampleOrder();
        auto pfn = buddy.alloc(order);
        if (!pfn) {
            pfn = buddy.alloc(0);
            if (!pfn)
                break;
            order = 0;
        }
        held_.push_back({*pfn, order});
    }

    // Phase 2: churn -- free random survivors, allocate replacements --
    // so holes of many sizes open up at scattered addresses.  The
    // free/alloc bias steers the free fraction toward the target.
    for (uint64_t op = 0; op < cfg_.churnOps; ++op) {
        double ff = free_fraction();
        bool do_free;
        if (ff < cfg_.targetFreeFraction)
            do_free = true;
        else if (ff > cfg_.targetFreeFraction * 1.15)
            do_free = false;
        else
            do_free = rng_.chance(0.5);
        if (do_free) {
            if (held_.empty())
                continue;
            size_t idx = rng_.below(static_cast<uint32_t>(held_.size()));
            auto [pfn, order] = held_[idx];
            buddy.free(pfn, order);
            held_[idx] = held_.back();
            held_.pop_back();
        } else {
            unsigned order = sampleOrder();
            auto pfn = buddy.alloc(order);
            if (pfn)
                held_.push_back({*pfn, order});
        }
    }

    // Phase 3: trim to the target free fraction -- release random
    // survivors if too full, absorb free memory if too empty.
    while (free_fraction() < cfg_.targetFreeFraction && !held_.empty()) {
        size_t idx = rng_.below(static_cast<uint32_t>(held_.size()));
        auto [pfn, order] = held_[idx];
        buddy.free(pfn, order);
        held_[idx] = held_.back();
        held_.pop_back();
    }
    while (free_fraction() > cfg_.targetFreeFraction * 1.05) {
        unsigned order = sampleOrder();
        auto pfn = buddy.alloc(order);
        if (!pfn)
            break;
        held_.push_back({*pfn, order});
    }
}

void
Fragmenter::releaseAll()
{
    for (auto [pfn, order] : held_)
        pm_.buddy().free(pfn, order);
    held_.clear();
}

} // namespace tps::os
