/**
 * @file
 * Binary buddy allocator over physical frames (Sec. II-B).
 *
 * Free memory is kept in per-order free lists of naturally aligned
 * power-of-two blocks; allocation splits larger blocks, freeing merges
 * buddy pairs back up.  Beyond the classic interface the allocator
 * supports:
 *
 *  - targeted allocation of a *specific* block (compaction and page
 *    merging need to carve particular frames out of the free lists);
 *  - `/proc/buddyinfo`-style free-list snapshots;
 *  - the free-contiguity coverage analysis behind the paper's Fig. 15
 *    (what fraction of free memory could be used if only a single page
 *    size existed).
 *
 * Ordered free lists make allocation deterministic (lowest address
 * first), which the reproducibility of every figure depends on.
 *
 * Sparse representation.  A fresh allocator's free lists are a pure
 * function of capacity: a run of maximal (order kMaxOrder) blocks
 * followed by a descending power-of-two tail.  The never-touched part
 * of that run is therefore kept *implicit* -- a single [runStart_,
 * runEnd_) interval instead of one container node per gigabyte -- and
 * blocks materialize into the explicit lists only when an operation
 * actually reaches them.  Materialization moves a block between two
 * equivalent encodings of the same state, so every query and every
 * statistic is bit-identical to the dense allocator; the dense mode
 * (materialize everything up front) survives as the oracle the golden
 * sparse-vs-dense suite compares against.  Because allocation prefers
 * the lowest address and buddy merges never cross the run boundary
 * (the run start is always kMaxOrder-aligned and maximal blocks never
 * merge further), the explicit region evolves exactly as the dense
 * allocator's would.
 */

#ifndef TPS_OS_BUDDY_ALLOCATOR_HH
#define TPS_OS_BUDDY_ALLOCATOR_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <vector>

#include "vm/addr.hh"

namespace tps::os {

using vm::Pfn;

/** Allocator operation counters (feeds the Fig. 17 system-time model). */
struct BuddyStats
{
    uint64_t allocs = 0;
    uint64_t frees = 0;
    uint64_t splits = 0;
    uint64_t merges = 0;
    uint64_t failedAllocs = 0;
};

/** The buddy allocator. */
class BuddyAllocator
{
  public:
    /** Largest supported block order (2^18 frames = 1 GB). */
    static constexpr unsigned kMaxOrder = 18;

    /**
     * @param total_frames  Physical frames managed; the initial state is
     *                      one big free region [0, total_frames).
     * @param dense         Materialize every free block up front (the
     *                      oracle mode) instead of keeping the untouched
     *                      maximal-block run implicit.
     */
    explicit BuddyAllocator(uint64_t total_frames, bool dense = false);

    /**
     * Allocate a naturally aligned block of 2^@p order frames.
     * @return first frame of the block, or nullopt if no block of this
     *         or any larger order is free.
     */
    std::optional<Pfn> alloc(unsigned order);

    /**
     * Allocate the specific block [@p pfn, @p pfn + 2^@p order), which
     * must currently be entirely free.
     * @return true on success; false if any frame in it is in use.
     */
    bool allocSpecific(Pfn pfn, unsigned order);

    /** Free a block previously returned by alloc()/allocSpecific(). */
    void free(Pfn pfn, unsigned order);

    /**
     * Largest order for which a free block is currently available
     * without exceeding @p max_order.
     * @return the order, or nullopt if nothing at all is free.
     */
    std::optional<unsigned> largestAvailable(unsigned max_order) const;

    /** True iff the whole block [@p pfn, +2^@p order) is free. */
    bool isFree(Pfn pfn, unsigned order) const;

    uint64_t totalFrames() const { return totalFrames_; }
    uint64_t freeFrames() const { return freeFrames_; }
    uint64_t usedFrames() const { return totalFrames_ - freeFrames_; }

    /** Free-block count per order (the /proc/buddyinfo view). */
    std::vector<uint64_t> freeListCounts() const;

    /**
     * Fraction (0..1) of currently free memory usable if *only* pages of
     * 2^@p order frames existed (Fig. 15's per-size coverage): each free
     * block of order o >= order contributes its full size; smaller free
     * blocks contribute nothing.
     */
    double coverageAt(unsigned order) const;

    /**
     * External-fragmentation index in [0,1]: 1 - (largest free block /
     * total free).  0 means all free memory is one block.
     */
    double fragmentationIndex() const;

    const BuddyStats &stats() const { return stats_; }
    void clearStats() { stats_ = BuddyStats{}; }

    /**
     * Visit every free block of @p order in ascending address order
     * (tests / invariant sweeps).  Implicit run blocks are visited
     * arithmetically, without being materialized.
     */
    void forEachFreeBlock(unsigned order,
                          const std::function<void(Pfn)> &visit) const;

    /** Number of still-implicit maximal blocks (tests/introspection). */
    uint64_t implicitBlocks() const
    {
        return (runEnd_ - runStart_) >> kMaxOrder;
    }

  private:
    /** Remove a specific block from its free list; false if absent. */
    bool removeFree(Pfn pfn, unsigned order);

    /** Insert a block, merging with its buddy as far as possible. */
    void insertAndMerge(Pfn pfn, unsigned order);

    /** Insert into a free list, keeping the non-empty bitmask in step. */
    void insertFree(Pfn pfn, unsigned order);

    /** Move the first implicit run block onto the explicit lists. */
    void materializeOne();

    /** Materialize implicit blocks up to and including @p pfn's. */
    void materializeThrough(Pfn pfn);

    uint64_t totalFrames_;
    uint64_t freeFrames_;
    std::vector<std::set<Pfn>> freeLists_;  //!< index = order
    /**
     * Bitmask of orders whose *explicit* list is non-empty, so the
     * alloc() fallback and largestAvailable() find the next populated
     * order with one bit scan instead of a linear walk (hot under
     * reservation churn).
     */
    uint32_t nonEmptyOrders_ = 0;
    //! Implicit free run [runStart_, runEnd_): untouched maximal
    //! (kMaxOrder) blocks not yet present in the explicit lists.  Both
    //! bounds are kMaxOrder-aligned; empty in dense mode.
    Pfn runStart_ = 0;
    Pfn runEnd_ = 0;
    BuddyStats stats_;
};

} // namespace tps::os

#endif // TPS_OS_BUDDY_ALLOCATOR_HH
