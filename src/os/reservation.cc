#include "os/reservation.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace tps::os {

BitCounter::BitCounter(uint64_t n)
    : n_(n), tree_(n + 1, 0), bits_(n, false)
{
}

void
BitCounter::set(uint64_t i)
{
    tps_assert(i < n_);
    if (bits_[i])
        return;
    bits_[i] = true;
    ++total_;
    for (uint64_t x = i + 1; x <= n_; x += x & (~x + 1))
        ++tree_[x];
}

bool
BitCounter::test(uint64_t i) const
{
    tps_assert(i < n_);
    return bits_[i];
}

uint64_t
BitCounter::prefix(uint64_t n) const
{
    uint64_t sum = 0;
    for (uint64_t x = n; x > 0; x -= x & (~x + 1))
        sum += tree_[x];
    return sum;
}

uint64_t
BitCounter::countRange(uint64_t first, uint64_t count) const
{
    tps_assert(first + count <= n_);
    return prefix(first + count) - prefix(first);
}

Reservation::Reservation(Vaddr va_base, unsigned order, Pfn pfn_base)
    : vaBase_(va_base), order_(order), pfnBase_(pfn_base),
      touched_(1ull << order)
{
    tps_assert(isAligned(va_base, bytes()));
    tps_assert(isAligned(pfn_base, pages()));
}

void
Reservation::touch(Vaddr va)
{
    tps_assert(covers(va));
    touched_.set(pageIndex(va));
}

bool
Reservation::isTouched(Vaddr va) const
{
    tps_assert(covers(va));
    return touched_.test(pageIndex(va));
}

uint64_t
Reservation::touchedIn(Vaddr base, unsigned page_bits) const
{
    tps_assert(covers(base));
    tps_assert(isAligned(base, 1ull << page_bits));
    uint64_t count = 1ull << (page_bits - vm::kBasePageBits);
    tps_assert(pageIndex(base) + count <= pages());
    return touched_.countRange(pageIndex(base), count);
}

std::optional<unsigned>
Reservation::mappedSizeAt(Vaddr va) const
{
    auto it = mapped_.upper_bound(va);
    if (it == mapped_.begin())
        return std::nullopt;
    --it;
    if (va < it->first + (1ull << it->second))
        return it->second;
    return std::nullopt;
}

void
Reservation::recordMapped(Vaddr base, unsigned page_bits)
{
    tps_assert(isAligned(base, 1ull << page_bits));
    tps_assert(covers(base));
    mapped_[base] = page_bits;
    mappedBytes_ += 1ull << page_bits;
}

std::vector<std::pair<Vaddr, unsigned>>
Reservation::eraseMappedWithin(Vaddr base, unsigned page_bits)
{
    Vaddr end = base + (1ull << page_bits);
    std::vector<std::pair<Vaddr, unsigned>> removed;
    auto it = mapped_.lower_bound(base);
    while (it != mapped_.end() && it->first < end) {
        tps_assert(it->first + (1ull << it->second) <= end);
        removed.emplace_back(it->first, it->second);
        mappedBytes_ -= 1ull << it->second;
        it = mapped_.erase(it);
    }
    return removed;
}

Reservation &
ReservationTable::create(Vaddr va_base, unsigned order, Pfn pfn_base)
{
    // Overlap check against neighbours.
    auto next = table_.lower_bound(va_base);
    if (next != table_.end())
        tps_assert(va_base + ((1ull << order) << vm::kBasePageBits) <=
                   next->second.vaBase());
    if (next != table_.begin()) {
        auto prev = std::prev(next);
        tps_assert(prev->second.vaEnd() <= va_base);
    }
    auto [it, inserted] = table_.emplace(
        va_base, Reservation(va_base, order, pfn_base));
    tps_assert(inserted);
    return it->second;
}

Reservation *
ReservationTable::find(Vaddr va)
{
    auto it = table_.upper_bound(va);
    if (it == table_.begin())
        return nullptr;
    --it;
    return it->second.covers(va) ? &it->second : nullptr;
}

const Reservation *
ReservationTable::find(Vaddr va) const
{
    return const_cast<ReservationTable *>(this)->find(va);
}

void
ReservationTable::remove(Vaddr va_base)
{
    auto it = table_.find(va_base);
    tps_assert(it != table_.end());
    table_.erase(it);
}

} // namespace tps::os
