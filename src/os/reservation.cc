#include "os/reservation.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace tps::os {

BitCounter::BitCounter(uint64_t n)
    : n_(n), words_((n + 63) / 64, 0), tree_((n + 63) / 64 + 1, 0)
{
}

void
BitCounter::set(uint64_t i)
{
    tps_assert(i < n_);
    uint64_t word = i >> 6;
    uint64_t bit = 1ull << (i & 63);
    if (words_[word] & bit)
        return;
    words_[word] |= bit;
    ++total_;
    for (uint64_t x = word + 1; x < tree_.size(); x += x & (~x + 1))
        ++tree_[x];
}

bool
BitCounter::test(uint64_t i) const
{
    tps_assert(i < n_);
    return (words_[i >> 6] >> (i & 63)) & 1;
}

uint64_t
BitCounter::prefix(uint64_t n) const
{
    uint64_t sum = 0;
    for (uint64_t x = n >> 6; x > 0; x -= x & (~x + 1))
        sum += tree_[x];
    if (n & 63)
        sum += static_cast<uint64_t>(
            std::popcount(words_[n >> 6] & lowMask(n & 63)));
    return sum;
}

uint64_t
BitCounter::countRange(uint64_t first, uint64_t count) const
{
    tps_assert(first + count <= n_);
    return prefix(first + count) - prefix(first);
}

Reservation::Reservation(Vaddr va_base, unsigned order, Pfn pfn_base)
    : vaBase_(va_base), order_(order), pfnBase_(pfn_base),
      touched_(1ull << order)
{
    tps_assert(isAligned(va_base, bytes()));
    tps_assert(isAligned(pfn_base, pages()));
}

void
Reservation::touch(Vaddr va)
{
    tps_assert(covers(va));
    touched_.set(pageIndex(va));
}

bool
Reservation::isTouched(Vaddr va) const
{
    tps_assert(covers(va));
    return touched_.test(pageIndex(va));
}

uint64_t
Reservation::touchedIn(Vaddr base, unsigned page_bits) const
{
    tps_assert(covers(base));
    tps_assert(isAligned(base, 1ull << page_bits));
    uint64_t count = 1ull << (page_bits - vm::kBasePageBits);
    tps_assert(pageIndex(base) + count <= pages());
    return touched_.countRange(pageIndex(base), count);
}

std::optional<unsigned>
Reservation::mappedSizeAt(Vaddr va) const
{
    // The hint remembers the last upper-bound position; a fault's
    // commit immediately precedes its promotion checks on the same
    // region, so the position is usually still right and the binary
    // search is skipped.
    size_t n = mapped_.size();
    size_t i = mapHint_;
    bool valid = i <= n && (i == 0 || mapped_[i - 1].first <= va) &&
                 (i == n || mapped_[i].first > va);
    if (!valid) {
        i = static_cast<size_t>(
            std::upper_bound(
                mapped_.begin(), mapped_.end(), va,
                [](Vaddr v, const std::pair<Vaddr, unsigned> &m) {
                    return v < m.first;
                }) -
            mapped_.begin());
        mapHint_ = i;
    }
    if (i == 0)
        return std::nullopt;
    const auto &m = mapped_[i - 1];
    if (va < m.first + (1ull << m.second))
        return m.second;
    return std::nullopt;
}

void
Reservation::recordMapped(Vaddr base, unsigned page_bits)
{
    tps_assert(isAligned(base, 1ull << page_bits));
    tps_assert(covers(base));
    auto it = std::lower_bound(
        mapped_.begin(), mapped_.end(), base,
        [](const std::pair<Vaddr, unsigned> &m, Vaddr v) {
            return m.first < v;
        });
    if (it != mapped_.end() && it->first == base)
        it->second = page_bits;
    else
        it = mapped_.insert(it, {base, page_bits});
    // Position the lookup hint just past the new entry: the promotion
    // checks that follow a commit probe this same neighbourhood.
    mapHint_ = static_cast<size_t>(it - mapped_.begin()) + 1;
    mappedBytes_ += 1ull << page_bits;
}

std::vector<std::pair<Vaddr, unsigned>>
Reservation::eraseMappedWithin(Vaddr base, unsigned page_bits)
{
    Vaddr end = base + (1ull << page_bits);
    auto first = std::lower_bound(
        mapped_.begin(), mapped_.end(), base,
        [](const std::pair<Vaddr, unsigned> &m, Vaddr v) {
            return m.first < v;
        });
    auto last = first;
    std::vector<std::pair<Vaddr, unsigned>> removed;
    while (last != mapped_.end() && last->first < end) {
        tps_assert(last->first + (1ull << last->second) <= end);
        removed.emplace_back(*last);
        mappedBytes_ -= 1ull << last->second;
        ++last;
    }
    mapHint_ = static_cast<size_t>(first - mapped_.begin());
    mapped_.erase(first, last);
    return removed;
}

uint64_t
Reservation::eraseMappedPages(Vaddr base, unsigned page_bits)
{
    Vaddr end = base + (1ull << page_bits);
    auto first = std::lower_bound(
        mapped_.begin(), mapped_.end(), base,
        [](const std::pair<Vaddr, unsigned> &m, Vaddr v) {
            return m.first < v;
        });
    auto last = first;
    uint64_t pages = 0;
    while (last != mapped_.end() && last->first < end) {
        tps_assert(last->first + (1ull << last->second) <= end);
        mappedBytes_ -= 1ull << last->second;
        pages += 1ull << (last->second - vm::kBasePageBits);
        ++last;
    }
    mapHint_ = static_cast<size_t>(first - mapped_.begin());
    mapped_.erase(first, last);
    return pages;
}

Reservation &
ReservationTable::create(Vaddr va_base, unsigned order, Pfn pfn_base)
{
    // Overlap check against neighbours.
    auto next = table_.lower_bound(va_base);
    if (next != table_.end())
        tps_assert(va_base + ((1ull << order) << vm::kBasePageBits) <=
                   next->second.vaBase());
    if (next != table_.begin()) {
        auto prev = std::prev(next);
        tps_assert(prev->second.vaEnd() <= va_base);
    }
    auto [it, inserted] = table_.emplace(
        va_base, Reservation(va_base, order, pfn_base));
    tps_assert(inserted);
    return it->second;
}

Reservation *
ReservationTable::find(Vaddr va)
{
    if (cached_ && cached_->covers(va))
        return cached_;
    auto it = table_.upper_bound(va);
    if (it == table_.begin())
        return nullptr;
    --it;
    if (!it->second.covers(va))
        return nullptr;
    cached_ = &it->second;
    return cached_;
}

const Reservation *
ReservationTable::find(Vaddr va) const
{
    return const_cast<ReservationTable *>(this)->find(va);
}

void
ReservationTable::remove(Vaddr va_base)
{
    auto it = table_.find(va_base);
    tps_assert(it != table_.end());
    if (cached_ == &it->second)
        cached_ = nullptr;
    table_.erase(it);
}

} // namespace tps::os
