/**
 * @file
 * Paging-policy interface and OS-work cost model.
 *
 * A paging policy decides how mmap regions are backed by physical
 * memory: which reservations to create, what to map on a demand fault,
 * and when to promote mappings to larger page sizes.  The paper's four
 * designs (base-4K demand paging, reservation-based THP, TPS, RMM) plus
 * CoLT's contiguity-seeking 4K allocation are each one policy; the
 * simulation engine and every figure harness treat them uniformly.
 *
 * Policies charge their work to an OsWork ledger using the cycle costs
 * below; the engine folds the ledger into the Fig. 17 system-time
 * percentage.
 */

#ifndef TPS_OS_POLICY_HH
#define TPS_OS_POLICY_HH

#include <cstdint>
#include <optional>
#include <string>

#include "vm/addr.hh"

namespace tps::obs {
class StatRegistry;
} // namespace tps::obs

namespace tps::os {

class AddressSpace;
struct Vma;

/** Cycle costs of OS memory-management work (order-of-magnitude model). */
namespace oscost {
constexpr uint64_t kFaultEntry = 500;     //!< trap + handler entry/exit
constexpr uint64_t kBuddyOp = 120;        //!< one allocator operation
constexpr uint64_t kReservationOp = 150;  //!< reservation-table update
constexpr uint64_t kPteWrite = 12;        //!< one PTE store
constexpr uint64_t kZeroPerBasePage = 600; //!< clearing 4 KB
constexpr uint64_t kCopyPerBasePage = 400; //!< migrating 4 KB
constexpr uint64_t kShootdown = 200;      //!< one INVLPG + bookkeeping
} // namespace oscost

/** Ledger of simulated OS work in cycles, by category. */
struct OsWork
{
    uint64_t faultCycles = 0;
    uint64_t allocCycles = 0;
    uint64_t pteCycles = 0;
    uint64_t zeroCycles = 0;
    uint64_t shootdownCycles = 0;
    uint64_t faults = 0;
    uint64_t promotions = 0;
    uint64_t reservationsCreated = 0;
    uint64_t reservationsMissed = 0;  //!< fell back to smaller blocks

    uint64_t
    totalCycles() const
    {
        return faultCycles + allocCycles + pteCycles + zeroCycles +
               shootdownCycles;
    }
};

/** An OS-side range-table entry (RMM). */
struct OsRange
{
    vm::Vpn baseVpn = 0;
    uint64_t pages = 0;
    int64_t offset = 0;   //!< pfn = vpn + offset
    bool writable = false;
};

/** The policy interface. */
class PagingPolicy
{
  public:
    virtual ~PagingPolicy() = default;

    /** Short name for tables ("thp", "tps", ...). */
    virtual const char *name() const = 0;

    /** A new VMA was created by mmap. */
    virtual void onMmap(AddressSpace &as, const Vma &vma) = 0;

    /** The VMA is being removed; release frames and reservations. */
    virtual void onMunmap(AddressSpace &as, const Vma &vma) = 0;

    /**
     * Handle a demand fault at @p va.
     * @return true if a mapping was installed (retry the access).
     */
    virtual bool onFault(AddressSpace &as, vm::Vaddr va, bool write) = 0;

    /**
     * RMM only: the OS range covering @p va, used by the MMU to refill
     * the range TLB after a miss.
     */
    virtual std::optional<OsRange>
    rangeFor(vm::Vaddr va) const
    {
        (void)va;
        return std::nullopt;
    }

    /** Preferred VA alignment (log2) for a mapping of @p length bytes. */
    virtual unsigned
    vaAlignBits(uint64_t length) const
    {
        (void)length;
        return vm::kBasePageBits;
    }

    /** Register policy-specific live counters under @p prefix. */
    virtual void
    registerStats(obs::StatRegistry &reg, const std::string &prefix) const
    {
        (void)reg;
        (void)prefix;
    }
};

} // namespace tps::os

#endif // TPS_OS_POLICY_HH
