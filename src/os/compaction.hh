/**
 * @file
 * Memory compaction daemon and the TPS page-merge optimization
 * (paper Secs. II-B and III-B3).
 *
 * The daemon migrates movable used blocks toward low addresses so that
 * free space coalesces into large contiguous blocks (the buddy allocator
 * merges the vacated buddies automatically).  The merge pass implements
 * the paper's proposed compaction-daemon extension: adjacent,
 * equal-sized, fully mapped reservations whose combined virtual region
 * is naturally aligned are migrated into one aligned physical block and
 * remapped as a single tailored page -- halving the TLB entries needed.
 */

#ifndef TPS_OS_COMPACTION_HH
#define TPS_OS_COMPACTION_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "os/address_space.hh"
#include "os/buddy_allocator.hh"
#include "os/compaction_stats.hh"

namespace tps::obs {
class EventTrace;
} // namespace tps::obs

namespace tps::os {

/** A movable physical block (owner can relocate it on request). */
struct MovableBlock
{
    Pfn pfn;
    unsigned order;
};

/** The compaction daemon. */
class CompactionDaemon
{
  public:
    explicit CompactionDaemon(BuddyAllocator &buddy) : buddy_(buddy) {}

    /** Record an OsCompactMove event per migration (nullptr = off). */
    void setEventTrace(obs::EventTrace *trace) { trace_ = trace; }

    /**
     * Migrate movable blocks downward to defragment free space.
     *
     * @param movable   Blocks the caller owns; updated in place with
     *                  their new locations.
     * @param relocate  Callback invoked per move (old pfn, new pfn,
     *                  order) so the owner can fix its own references.
     * @param max_moves Bound on migrations.
     * @return number of blocks migrated.
     */
    uint64_t compact(std::vector<MovableBlock> &movable,
                     const std::function<void(Pfn, Pfn, unsigned)>
                         &relocate,
                     uint64_t max_moves);

    const CompactionStats &stats() const { return stats_; }

  private:
    BuddyAllocator &buddy_;
    CompactionStats stats_;
    obs::EventTrace *trace_ = nullptr;
};

/**
 * TPS page-merge pass (Sec. III-B3): merge adjacent equal-size fully
 * mapped reservations of @p as into single larger tailored pages by
 * migrating their frames into freshly allocated aligned blocks.
 *
 * @param as          Address space to optimize (TPS policy expected).
 * @param max_merges  Bound on merges performed.
 * @return number of merges performed.
 */
uint64_t mergeReservationPass(AddressSpace &as, uint64_t max_merges);

} // namespace tps::os

#endif // TPS_OS_COMPACTION_HH
