#include "os/address_space.hh"

#include "obs/event_trace.hh"
#include "obs/stat_registry.hh"
#include "obs/stats_bindings.hh"
#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/sim_error.hh"

namespace tps::os {

AddressSpace::AddressSpace(PhysMemory &pm,
                           std::unique_ptr<PagingPolicy> policy,
                           Config cfg)
    : phys_(pm), policy_(std::move(policy)), cfg_(cfg),
      pageTable_(pm, cfg.encoding, cfg.aliasMode, cfg.denseState),
      mmapCursor_(cfg.mmapBase)
{
    tps_assert(policy_ != nullptr);
}

AddressSpace::AddressSpace(PhysMemory &pm,
                           std::unique_ptr<PagingPolicy> policy)
    : AddressSpace(pm, std::move(policy), Config{})
{
}

AddressSpace::~AddressSpace()
{
    // Tear down outstanding VMAs so frames return to the allocator.
    while (!vmas_.empty())
        munmap(vmas_.begin()->first);
}

vm::Vaddr
AddressSpace::mmap(uint64_t length, bool writable)
{
    tps_assert(length > 0);
    length = alignUp(length, vm::kBasePageBytes);

    unsigned align_bits = policy_->vaAlignBits(length);
    if (align_bits > vm::kMaxPageBits)
        align_bits = vm::kMaxPageBits;
    vm::Vaddr start = alignUp(mmapCursor_, 1ull << align_bits);
    // Leave a guard page so adjacent VMAs never share an aligned block.
    mmapCursor_ = start + length + vm::kBasePageBytes;

    Vma vma{start, length, writable};
    vma.id = ++nextVmaId_;
    auto [it, inserted] = vmas_.emplace(start, vma);
    tps_assert(inserted);
    if (trace_)
        trace_->osMap(start, length, it->second.id);
    policy_->onMmap(*this, it->second);
    return start;
}

void
AddressSpace::munmap(vm::Vaddr start)
{
    auto it = vmas_.find(start);
    if (it == vmas_.end())
        throwSimError(ErrorKind::InvalidArgument,
                      "munmap of unmapped region %#llx",
                      static_cast<unsigned long long>(start));
    if (trace_)
        trace_->osUnmap(start, it->second.id);
    policy_->onMunmap(*this, it->second);
    if (unmapFn_)
        unmapFn_(start, start + it->second.length);
    if (cachedVma_ == &it->second)
        cachedVma_ = nullptr;
    vmas_.erase(it);
}

bool
AddressSpace::handleFault(vm::Vaddr va, bool write)
{
    const Vma *vma = findVma(va);
    if (!vma)
        return false;
    if (write && !vma->writable)
        return false;
    osWork_.faultCycles += oscost::kFaultEntry;
    ++osWork_.faults;
    if (trace_)
        trace_->osFault(va, write);
    // Copy-on-write resolution comes first: the page exists but is
    // write-protected, which the paging policy must not reinterpret
    // as a demand fault.
    if (cowFn_ && cowFn_(*this, va, write))
        return true;
    ++touchedBasePages_;
    return policy_->onFault(*this, va, write);
}

void
AddressSpace::insertVma(const Vma &vma)
{
    auto [it, inserted] = vmas_.emplace(vma.start, vma);
    tps_assert(inserted);
    if (it->second.id == 0)
        it->second.id = ++nextVmaId_;
    else if (it->second.id > nextVmaId_)
        nextVmaId_ = it->second.id;
    if (trace_)
        trace_->osMap(it->second.start, it->second.length,
                      it->second.id);
}

const Vma *
AddressSpace::findVma(vm::Vaddr va) const
{
    if (cachedVma_ && cachedVma_->contains(va))
        return cachedVma_;
    auto it = vmas_.upper_bound(va);
    if (it == vmas_.begin())
        return nullptr;
    --it;
    if (!it->second.contains(va))
        return nullptr;
    cachedVma_ = &it->second;
    return cachedVma_;
}

void
AddressSpace::shootdown(vm::Vaddr va)
{
    osWork_.shootdownCycles += oscost::kShootdown;
    if (shootdownFn_)
        shootdownFn_(va);
}

void
AddressSpace::shootdownAll()
{
    osWork_.shootdownCycles += oscost::kShootdown;
    if (flushFn_)
        flushFn_();
}

Histogram
AddressSpace::pageSizeCensus() const
{
    Histogram hist;
    pageTable_.forEachLeaf(
        [&](vm::Vaddr, const vm::LeafInfo &leaf) {
            hist.add(leaf.pageBits);
        });
    return hist;
}

uint64_t
AddressSpace::mappedBytes() const
{
    uint64_t bytes = 0;
    pageTable_.forEachLeaf(
        [&](vm::Vaddr, const vm::LeafInfo &leaf) {
            bytes += 1ull << leaf.pageBits;
        });
    return bytes;
}

void
AddressSpace::registerStats(obs::StatRegistry &reg,
                            const std::string &prefix)
{
    obs::bindOsWork(reg, prefix + ".work", &osWork_);
    obs::bindBuddyStats(reg, prefix + ".buddy",
                        &phys_.buddy().stats());
    obs::bindCompactionStats(reg, prefix + ".compaction",
                             &compaction_);
    reg.addCounter(prefix + ".touchedBasePages", &touchedBasePages_,
                   "base pages demand-touched");
    policy_->registerStats(reg, prefix + ".policy");
}

} // namespace tps::os
