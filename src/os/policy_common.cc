#include "os/policy_common.hh"

#include <cmath>

#include "obs/event_trace.hh"
#include "obs/mem_telemetry.hh"
#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/sim_error.hh"

namespace tps::os {

ReservationPolicyBase::ReservationPolicyBase(ReservationPolicyConfig cfg)
    : cfg_(std::move(cfg))
{
    tps_assert(cfg_.capPageBits >= vm::kBasePageBits);
    tps_assert(cfg_.capPageBits - vm::kBasePageBits <=
               BuddyAllocator::kMaxOrder);
    tps_assert(cfg_.threshold > 0.0 && cfg_.threshold <= 1.0);
    for (unsigned pb : cfg_.promotionSizes)
        tps_assert(pb > vm::kBasePageBits && pb <= cfg_.capPageBits);
}

unsigned
ReservationPolicyBase::vaAlignBits(uint64_t length) const
{
    unsigned want = log2Ceil(length);
    return want > cfg_.vaAlignCap ? cfg_.vaAlignCap : want;
}

unsigned
ReservationPolicyBase::naturalBlockBits(const Vma &vma, vm::Vaddr va,
                                        unsigned cap)
{
    for (unsigned pb = cap; pb > vm::kBasePageBits; --pb) {
        vm::Vaddr base = alignDown(va, 1ull << pb);
        if (base >= vma.start && base + (1ull << pb) <= vma.end())
            return pb;
    }
    return vm::kBasePageBits;
}

void
ReservationPolicyBase::onMmap(AddressSpace &as, const Vma &vma)
{
    if (!cfg_.eager)
        return;
    // Eager paging: back and map the whole region right now, using the
    // natural aligned-block decomposition.
    vm::Vaddr va = vma.start;
    while (va < vma.end()) {
        unsigned bits = naturalBlockBits(vma, va, cfg_.capPageBits);
        if (bits >= cfg_.minReservationPageBits) {
            Reservation *resv = ensureReservation(as, vma, va);
            if (resv) {
                // The degraded reservation may be smaller than `bits`.
                unsigned got = resv->order() + vm::kBasePageBits;
                mapWhole(as, vma, *resv, resv->vaBase(), got);
                va = resv->vaEnd();
                continue;
            }
        }
        demandBasePage(as, vma, va, vma.writable);
        va += vm::kBasePageBytes;
    }
}

Reservation *
ReservationPolicyBase::ensureReservation(AddressSpace &as, const Vma &vma,
                                         vm::Vaddr va)
{
    unsigned want_bits = naturalBlockBits(vma, va, cfg_.capPageBits);
    OsWork &work = as.osWork();
    for (unsigned bits = want_bits; bits >= cfg_.minReservationPageBits;
         --bits) {
        unsigned order = bits - vm::kBasePageBits;
        vm::Vaddr base = alignDown(va, 1ull << bits);
        work.allocCycles += oscost::kBuddyOp;
        auto pfn = as.phys().reserve(order);
        if (!pfn)
            continue;
        if (bits < want_bits)
            ++work.reservationsMissed;
        work.allocCycles += oscost::kReservationOp;
        ++work.reservationsCreated;
        if (obs::EventTrace *trace = as.eventTrace())
            trace->osReserve(base, bits);
        if (obs::MemTelemetry *tel = as.memTelemetry())
            tel->onReservationCreated(base, work.faults);
        return &as.reservations().create(base, order, *pfn);
    }
    return nullptr;
}

bool
ReservationPolicyBase::demandBasePage(AddressSpace &as, const Vma &vma,
                                      vm::Vaddr va, bool write)
{
    (void)write;
    OsWork &work = as.osWork();
    work.allocCycles += oscost::kBuddyOp;
    auto pfn = as.phys().allocApp(0);
    if (!pfn) {
        throwSimError(ErrorKind::OutOfMemory,
                      "out of physical memory backing va %#llx "
                      "(no OOM killer is modeled; raise physBytes)",
                      static_cast<unsigned long long>(va));
    }
    vm::Vaddr base = alignDown(va, vm::kBasePageBytes);
    as.pageTable().map(base, *pfn, vm::kBasePageBits, vma.writable, true);
    work.pteCycles += oscost::kPteWrite;
    work.zeroCycles += oscost::kZeroPerBasePage;
    return true;
}

void
ReservationPolicyBase::commitBasePage(AddressSpace &as, const Vma &vma,
                                      Reservation &resv, vm::Vaddr va)
{
    vm::Vaddr base = alignDown(va, vm::kBasePageBytes);
    as.pageTable().map(base, resv.pfnFor(base), vm::kBasePageBits,
                       vma.writable, true);
    resv.recordMapped(base, vm::kBasePageBits);
    as.phys().commitReserved(1);
    OsWork &work = as.osWork();
    work.pteCycles += oscost::kPteWrite;
    work.zeroCycles += oscost::kZeroPerBasePage;
}

void
ReservationPolicyBase::mapWhole(AddressSpace &as, const Vma &vma,
                                Reservation &resv, vm::Vaddr base,
                                unsigned bits)
{
    uint64_t pages = 1ull << (bits - vm::kBasePageBits);
    uint64_t mapped_pages = resv.eraseMappedPages(base, bits);
    uint64_t newly = pages - mapped_pages;
    as.pageTable().map(base, resv.pfnFor(base), bits, vma.writable, true);
    resv.recordMapped(base, bits);
    OsWork &work = as.osWork();
    unsigned slots = 1u << vm::spanBits(bits);
    work.pteCycles += oscost::kPteWrite * slots;
    work.zeroCycles += oscost::kZeroPerBasePage * newly;
    as.phys().commitReserved(newly);
}

void
ReservationPolicyBase::tryPromote(AddressSpace &as, const Vma &vma,
                                  Reservation &resv, vm::Vaddr va)
{
    unsigned block_bits = resv.order() + vm::kBasePageBits;
    OsWork &work = as.osWork();
    for (unsigned target : cfg_.promotionSizes) {
        if (target > block_bits)
            break;
        vm::Vaddr region = alignDown(va, 1ull << target);
        auto cur = resv.mappedSizeAt(region);
        if (cur && *cur >= target)
            continue;   // already at or beyond this rung
        uint64_t pages = 1ull << (target - vm::kBasePageBits);
        auto needed = static_cast<uint64_t>(
            std::ceil(cfg_.threshold * static_cast<double>(pages)));
        if (needed == 0)
            needed = 1;
        if (resv.touchedIn(region, target) < needed)
            break;

        // Promote: fold the constituent mappings into one page.
        uint64_t mapped_pages = resv.eraseMappedPages(region, target);
        tps_assert(mapped_pages <= pages);
        uint64_t newly = pages - mapped_pages;
        as.pageTable().map(region, resv.pfnFor(region), target,
                           vma.writable, true);
        resv.recordMapped(region, target);
        as.phys().commitReserved(newly);
        unsigned slots = 1u << vm::spanBits(target);
        work.pteCycles += oscost::kPteWrite * slots;
        work.zeroCycles += oscost::kZeroPerBasePage * newly;
        ++work.promotions;
        if (obs::EventTrace *trace = as.eventTrace())
            trace->osPromote(region, target);
        if (obs::MemTelemetry *tel = as.memTelemetry()) {
            tel->onPromotion(resv.vaBase(),
                             resv.touchedIn(region, target), pages,
                             work.faults);
        }
        // Per Sec. III-C2, no shootdown is required: stale smaller-page
        // TLB entries still translate their portion correctly.
    }
}

bool
ReservationPolicyBase::onFault(AddressSpace &as, vm::Vaddr va, bool write)
{
    const Vma *vma = as.findVma(va);
    tps_assert(vma != nullptr);

    Reservation *resv = as.reservations().find(va);
    if (!resv) {
        unsigned bits = naturalBlockBits(*vma, va, cfg_.capPageBits);
        if (bits >= cfg_.minReservationPageBits)
            resv = ensureReservation(as, *vma, va);
        if (!resv)
            return demandBasePage(as, *vma, va, write);
    }

    resv->touch(va);
    commitBasePage(as, *vma, *resv, va);
    if (!cfg_.promotionSizes.empty())
        tryPromote(as, *vma, *resv, va);
    return true;
}

void
ReservationPolicyBase::onMunmap(AddressSpace &as, const Vma &vma)
{
    OsWork &work = as.osWork();

    // Unmap every leaf in the region; frames inside reservations are
    // released with their block below.
    std::vector<std::pair<vm::Vaddr, vm::LeafInfo>> leaves;
    as.pageTable().forEachLeafInRange(
        vma.start, vma.end(),
        [&](vm::Vaddr base, const vm::LeafInfo &leaf) {
            leaves.emplace_back(base, leaf);
        });
    // Bulk unmaps flush once instead of issuing per-page INVLPGs.
    bool bulk = leaves.size() > 256;
    if (bulk)
        as.shootdownAll();
    for (const auto &[base, leaf] : leaves) {
        as.pageTable().unmap(base);
        if (!bulk)
            as.shootdown(base);
        work.pteCycles +=
            oscost::kPteWrite * (1u << vm::spanBits(leaf.pageBits));
        if (!as.reservations().find(base)) {
            as.phys().freeApp(leaf.pfn,
                              leaf.pageBits - vm::kBasePageBits);
            work.allocCycles += oscost::kBuddyOp;
        }
    }

    // Release reservations overlapping the VMA.
    std::vector<vm::Vaddr> to_remove;
    for (auto &[base, resv] : as.reservations().all()) {
        if (base >= vma.start && base < vma.end())
            to_remove.push_back(base);
    }
    for (vm::Vaddr base : to_remove) {
        Reservation *resv = as.reservations().find(base);
        as.phys().freeReservationBlock(
            resv->pfnBase(), resv->order(),
            resv->mappedBytes() >> vm::kBasePageBits);
        work.allocCycles += oscost::kBuddyOp + oscost::kReservationOp;
        if (obs::MemTelemetry *tel = as.memTelemetry())
            tel->onReservationReleased(base, work.faults);
        as.reservations().remove(base);
    }
}

Base4kPolicy::Base4kPolicy()
    : ReservationPolicyBase([] {
          ReservationPolicyConfig cfg;
          cfg.name = "base4k";
          cfg.capPageBits = vm::kBasePageBits;
          cfg.minReservationPageBits = vm::kBasePageBits + 1;  // never
          cfg.vaAlignCap = vm::kBasePageBits;
          return cfg;
      }())
{
}

ThpPolicy::ThpPolicy(double threshold)
    : ReservationPolicyBase([&] {
          ReservationPolicyConfig cfg;
          cfg.name = "thp";
          cfg.capPageBits = vm::kPageBits2M;
          cfg.minReservationPageBits = vm::kPageBits2M;
          cfg.promotionSizes = {vm::kPageBits2M};
          cfg.threshold = threshold;
          cfg.vaAlignCap = vm::kPageBits2M;
          return cfg;
      }())
{
}

TpsPolicy::TpsPolicy(TpsPolicyConfig tps_cfg)
    : ReservationPolicyBase([&] {
          ReservationPolicyConfig cfg;
          cfg.name = tps_cfg.eager ? "tps-eager" : "tps";
          cfg.capPageBits = tps_cfg.maxPageBits;
          cfg.minReservationPageBits = vm::kBasePageBits + 1;
          for (unsigned pb = vm::kBasePageBits + 1;
               pb <= tps_cfg.maxPageBits; ++pb)
              cfg.promotionSizes.push_back(pb);
          cfg.threshold = tps_cfg.threshold;
          cfg.eager = tps_cfg.eager;
          cfg.vaAlignCap = tps_cfg.maxPageBits;
          return cfg;
      }())
{
}

// CoLT is a hardware proposal layered on the stock OS: the paper's
// comparison runs it with the same reservation-based THP policy as the
// baseline, so the coalesced TLB handles whatever stays 4 KB while the
// split large-page TLBs serve the promoted 2 MB pages.
ColtPolicy::ColtPolicy()
    : ReservationPolicyBase([] {
          ReservationPolicyConfig cfg;
          cfg.name = "colt";
          cfg.capPageBits = vm::kPageBits2M;
          cfg.minReservationPageBits = vm::kPageBits2M;
          cfg.promotionSizes = {vm::kPageBits2M};
          cfg.vaAlignCap = vm::kPageBits2M;
          return cfg;
      }())
{
}

} // namespace tps::os
