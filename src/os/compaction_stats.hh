/**
 * @file
 * Compaction result counters, split out of compaction.hh so the
 * AddressSpace can hold a per-process accumulator (merge passes update
 * it as they run) without including the daemon itself.
 */

#ifndef TPS_OS_COMPACTION_STATS_HH
#define TPS_OS_COMPACTION_STATS_HH

#include <cstdint>

namespace tps::os {

/** Compaction results. */
struct CompactionStats
{
    uint64_t migratedBlocks = 0;
    uint64_t migratedFrames = 0;
    uint64_t mergedPages = 0;
};

} // namespace tps::os

#endif // TPS_OS_COMPACTION_STATS_HH
