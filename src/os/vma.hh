/**
 * @file
 * Virtual memory area descriptor: one mmap'd region of the process
 * address space.
 */

#ifndef TPS_OS_VMA_HH
#define TPS_OS_VMA_HH

#include <cstdint>

#include "vm/addr.hh"

namespace tps::os {

/** One mapped virtual region. */
struct Vma
{
    vm::Vaddr start = 0;
    uint64_t length = 0;      //!< bytes, multiple of the base page size
    bool writable = true;
    /**
     * Stable per-address-space ordinal (1-based, in creation order; 0 =
     * unassigned).  Event traces attribute misses to VMAs by this id,
     * which is deterministic because VMA creation order is.
     */
    uint64_t id = 0;

    vm::Vaddr end() const { return start + length; }

    bool
    contains(vm::Vaddr va) const
    {
        return va >= start && va < end();
    }
};

} // namespace tps::os

#endif // TPS_OS_VMA_HH
