#include "os/compaction.hh"

#include <algorithm>

#include "obs/event_trace.hh"
#include "obs/mem_telemetry.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace tps::os {

uint64_t
CompactionDaemon::compact(std::vector<MovableBlock> &movable,
                          const std::function<void(Pfn, Pfn, unsigned)>
                              &relocate,
                          uint64_t max_moves)
{
    // Work highest-address blocks first: vacating the top of memory
    // coalesces free space fastest.
    std::sort(movable.begin(), movable.end(),
              [](const MovableBlock &a, const MovableBlock &b) {
                  return a.pfn > b.pfn;
              });
    uint64_t moves = 0;
    for (auto &block : movable) {
        if (moves >= max_moves)
            break;
        auto dest = buddy_.alloc(block.order);
        if (!dest)
            continue;
        if (*dest >= block.pfn) {
            // No lower slot available; undo.
            buddy_.free(*dest, block.order);
            continue;
        }
        relocate(block.pfn, *dest, block.order);
        if (trace_)
            trace_->osCompactMove(block.pfn, *dest,
                                  1ull << block.order);
        buddy_.free(block.pfn, block.order);
        block.pfn = *dest;
        ++moves;
        ++stats_.migratedBlocks;
        stats_.migratedFrames += 1ull << block.order;
    }
    return moves;
}

uint64_t
mergeReservationPass(AddressSpace &as, uint64_t max_merges)
{
    // Candidate pairs: adjacent reservations of equal order, combined
    // region naturally aligned, each fully mapped as a single page.
    struct Pair
    {
        vm::Vaddr aBase;
        vm::Vaddr bBase;
        unsigned order;
    };
    auto fully_mapped_as_one = [](const Reservation &r) {
        const auto &m = r.mappedRegions();
        return m.size() == 1 && m.begin()->first == r.vaBase() &&
               m.begin()->second == r.order() + vm::kBasePageBits;
    };

    std::vector<Pair> pairs;
    const auto &table = as.reservations().all();
    for (auto it = table.begin(); it != table.end(); ++it) {
        auto next = std::next(it);
        if (next == table.end())
            break;
        const Reservation &a = it->second;
        const Reservation &b = next->second;
        if (a.order() != b.order())
            continue;
        if (a.order() + 1 > BuddyAllocator::kMaxOrder)
            continue;
        if (b.vaBase() != a.vaEnd())
            continue;
        if (!isAligned(a.vaBase(), 2 * a.bytes()))
            continue;
        if (!fully_mapped_as_one(a) || !fully_mapped_as_one(b))
            continue;
        pairs.push_back({a.vaBase(), b.vaBase(), a.order()});
        ++it;   // do not reuse b as the next pair's a
        if (it == table.end())
            break;
    }

    OsWork &work = as.osWork();
    obs::MemTelemetry *tel = as.memTelemetry();
    double contig_before =
        tel ? obs::contiguityScore(as.phys().buddy().freeListCounts())
            : 0.0;
    uint64_t moved_frames = 0;
    uint64_t merges = 0;
    for (const Pair &p : pairs) {
        if (merges >= max_merges)
            break;
        Reservation *a = as.reservations().find(p.aBase);
        Reservation *b = as.reservations().find(p.bBase);
        tps_assert(a && b);
        unsigned order = p.order;
        uint64_t half_pages = 1ull << order;
        unsigned merged_bits = order + 1 + vm::kBasePageBits;

        work.allocCycles += oscost::kBuddyOp;
        auto dest = as.phys().reserve(order + 1);
        if (!dest)
            continue;   // not enough contiguity for this merge

        const Vma *vma = as.findVma(p.aBase);
        tps_assert(vma != nullptr);

        // Migrate: unmap both halves (with shootdowns -- the frames are
        // moving), then map the combined tailored page.
        as.pageTable().unmap(a->vaBase());
        as.pageTable().unmap(b->vaBase());
        as.shootdown(a->vaBase());
        as.shootdown(b->vaBase());
        work.zeroCycles += 0;   // copies, not zeroing
        work.allocCycles += oscost::kCopyPerBasePage * 2 * half_pages;
        as.pageTable().map(p.aBase, *dest, merged_bits, vma->writable,
                           true);
        work.pteCycles +=
            oscost::kPteWrite * (1u << vm::spanBits(merged_bits));

        // Accounting: the old blocks were fully committed; the new block
        // becomes fully committed.
        as.phys().freeReservationBlock(a->pfnBase(), order, half_pages);
        as.phys().freeReservationBlock(b->pfnBase(), order, half_pages);
        as.phys().commitReserved(2 * half_pages);

        if (obs::EventTrace *trace = as.eventTrace()) {
            trace->osCompactMove(a->pfnBase(), *dest, half_pages);
            trace->osCompactMove(b->pfnBase(), *dest + half_pages,
                                 half_pages);
        }

        vm::Vaddr base = p.aBase;
        as.reservations().remove(p.aBase);
        as.reservations().remove(p.bBase);
        Reservation &merged =
            as.reservations().create(base, order + 1, *dest);
        merged.recordMapped(base, merged_bits);
        work.allocCycles += oscost::kReservationOp;
        CompactionStats &cstats = as.compactionStats();
        cstats.migratedBlocks += 2;
        cstats.migratedFrames += 2 * half_pages;
        ++cstats.mergedPages;
        moved_frames += 2 * half_pages;
        ++merges;
    }
    if (tel) {
        double contig_after =
            obs::contiguityScore(as.phys().buddy().freeListCounts());
        tel->onCompactionPass(moved_frames, merges, contig_before,
                              contig_after);
    }
    return merges;
}

} // namespace tps::os
