#include "os/policy_rmm.hh"

#include "obs/stat_registry.hh"
#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/sim_error.hh"

namespace tps::os {

namespace {

/** Free [start, start+count) frames as aligned power-of-two blocks. */
void
freeFrameRange(AddressSpace &as, Pfn start, uint64_t count)
{
    while (count > 0) {
        uint64_t block = largestAlignedPow2(start, count);
        as.phys().freeApp(start, log2Floor(block));
        start += block;
        count -= block;
    }
}

} // namespace

std::pair<Pfn, uint64_t>
RmmPolicy::allocRun(AddressSpace &as, uint64_t pages)
{
    OsWork &work = as.osWork();
    unsigned want = log2Ceil(pages);
    if (want > BuddyAllocator::kMaxOrder)
        want = BuddyAllocator::kMaxOrder;
    for (int o = static_cast<int>(want); o >= 0; --o) {
        work.allocCycles += oscost::kBuddyOp;
        auto pfn = as.phys().allocApp(static_cast<unsigned>(o));
        if (!pfn)
            continue;
        uint64_t got = 1ull << o;
        uint64_t run = got < pages ? got : pages;
        if (run < got) {
            // Give the unused tail straight back; ranges have no
            // alignment restriction, so nothing is wasted.
            freeFrameRange(as, *pfn + run, got - run);
            work.allocCycles += oscost::kBuddyOp;
        }
        return {*pfn, run};
    }
    return {0, 0};
}

void
RmmPolicy::freeRun(AddressSpace &as, Pfn pfn, uint64_t pages)
{
    freeFrameRange(as, pfn, pages);
}

void
RmmPolicy::onMmap(AddressSpace &as, const Vma &vma)
{
    OsWork &work = as.osWork();
    uint64_t pages = vma.length >> vm::kBasePageBits;
    vm::Vaddr va = vma.start;
    auto &vma_runs = runs_[vma.start];

    while (pages > 0) {
        auto [pfn, run] = allocRun(as, pages);
        if (run == 0)
            throwSimError(ErrorKind::OutOfMemory,
                          "RMM eager paging: out of physical memory");
        vma_runs.emplace_back(pfn, run);

        // Populate the page table with base pages (RMM keeps both
        // structures redundantly).
        for (uint64_t i = 0; i < run; ++i) {
            as.pageTable().map(va + (i << vm::kBasePageBits), pfn + i,
                               vm::kBasePageBits, vma.writable, true);
        }
        work.pteCycles += oscost::kPteWrite * run;
        work.zeroCycles += oscost::kZeroPerBasePage * run;

        // Record (or extend) the OS range.
        vm::Vpn vpn = vm::vpnOf(va);
        int64_t offset = static_cast<int64_t>(pfn) -
                         static_cast<int64_t>(vpn);
        bool merged = false;
        if (!ranges_.empty()) {
            auto last = std::prev(ranges_.end());
            OsRange &r = last->second;
            if (r.baseVpn + r.pages == vpn && r.offset == offset &&
                r.writable == vma.writable) {
                r.pages += run;
                merged = true;
            }
        }
        if (!merged)
            ranges_[vpn] = OsRange{vpn, run, offset, vma.writable};
        work.allocCycles += oscost::kReservationOp;

        va += run << vm::kBasePageBits;
        pages -= run;
    }
}

bool
RmmPolicy::onFault(AddressSpace &as, vm::Vaddr va, bool write)
{
    // Eager paging maps everything up front; a fault can only mean the
    // region lost its backing (not modeled) or a stray access.  Back it
    // with a single demand page and a one-page range.
    (void)write;
    const Vma *vma = as.findVma(va);
    tps_assert(vma != nullptr);
    OsWork &work = as.osWork();
    work.allocCycles += oscost::kBuddyOp;
    auto pfn = as.phys().allocApp(0);
    if (!pfn)
        return false;
    vm::Vaddr base = alignDown(va, vm::kBasePageBytes);
    as.pageTable().map(base, *pfn, vm::kBasePageBits, vma->writable,
                       true);
    work.pteCycles += oscost::kPteWrite;
    work.zeroCycles += oscost::kZeroPerBasePage;
    vm::Vpn vpn = vm::vpnOf(base);
    ranges_[vpn] = OsRange{vpn, 1,
                           static_cast<int64_t>(*pfn) -
                               static_cast<int64_t>(vpn),
                           vma->writable};
    runs_[vma->start].emplace_back(*pfn, 1);
    return true;
}

std::optional<OsRange>
RmmPolicy::rangeFor(vm::Vaddr va) const
{
    vm::Vpn vpn = vm::vpnOf(va);
    auto it = ranges_.upper_bound(vpn);
    if (it == ranges_.begin())
        return std::nullopt;
    --it;
    const OsRange &r = it->second;
    if (vpn >= r.baseVpn && vpn < r.baseVpn + r.pages)
        return r;
    return std::nullopt;
}

void
RmmPolicy::onMunmap(AddressSpace &as, const Vma &vma)
{
    OsWork &work = as.osWork();

    // Drop all page-table leaves in the region.
    std::vector<vm::Vaddr> bases;
    as.pageTable().forEachLeafInRange(
        vma.start, vma.end(),
        [&](vm::Vaddr base, const vm::LeafInfo &) {
            bases.push_back(base);
        });
    if (bases.size() > 256) {
        as.shootdownAll();
    }
    for (vm::Vaddr base : bases) {
        as.pageTable().unmap(base);
        if (bases.size() <= 256)
            as.shootdown(base);
    }
    work.pteCycles += oscost::kPteWrite * bases.size();

    // Drop OS ranges starting inside the VMA.
    vm::Vpn start_vpn = vm::vpnOf(vma.start);
    vm::Vpn end_vpn = vm::vpnOf(vma.end());
    for (auto it = ranges_.lower_bound(start_vpn);
         it != ranges_.end() && it->first < end_vpn;) {
        it = ranges_.erase(it);
    }

    // Free the physical runs.
    auto rit = runs_.find(vma.start);
    if (rit != runs_.end()) {
        for (const auto &[pfn, pages] : rit->second) {
            freeRun(as, pfn, pages);
            work.allocCycles += oscost::kBuddyOp;
        }
        runs_.erase(rit);
    }
}

void
RmmPolicy::registerStats(obs::StatRegistry &reg,
                         const std::string &prefix) const
{
    reg.addCounter(prefix + ".ranges",
                   [this] { return uint64_t(ranges_.size()); },
                   "OS range-table entries");
}

} // namespace tps::os
