/**
 * @file
 * Fragmentation workload: ages the buddy allocator into a realistically
 * fragmented steady state, substituting for the paper's dump of a
 * heavily loaded server's /proc/buddyinfo (Figs. 15/16 input).
 *
 * The driver performs alloc/free churn with a size distribution skewed
 * toward small blocks, then frees a random subset so the surviving
 * allocations pin scattered regions.  The result exhibits the paper's
 * key property: little free contiguity at conventional huge-page sizes,
 * but substantial intermediate contiguity TPS can exploit.
 */

#ifndef TPS_OS_FRAGMENTER_HH
#define TPS_OS_FRAGMENTER_HH

#include <cstdint>
#include <vector>

#include "os/phys_memory.hh"
#include "util/rng.hh"

namespace tps::os {

/** Fragmenter knobs. */
struct FragmenterConfig
{
    double targetFreeFraction = 0.30;  //!< free memory after aging
    uint64_t churnOps = 120000;        //!< alloc/free churn operations
    unsigned maxBlockOrder = 10;       //!< churn block sizes up to 4 MB
    double smallBias = 1.7;            //!< order sampling skew (higher =
                                       //!< more small blocks)
    uint64_t seed = 0x5eed;
};

/** The fragmentation driver. */
class Fragmenter
{
  public:
    Fragmenter(PhysMemory &pm, FragmenterConfig cfg = FragmenterConfig{});

    /** Age memory; afterwards the held blocks pin a fragmented state. */
    void run();

    /** Free every block still held (undo). */
    void releaseAll();

    /** Blocks currently pinned. */
    const std::vector<std::pair<Pfn, unsigned>> &held() const
    {
        return held_;
    }

  private:
    /** Sample a block order, skewed toward small ones. */
    unsigned sampleOrder();

    PhysMemory &pm_;
    FragmenterConfig cfg_;
    Pcg32 rng_;
    std::vector<std::pair<Pfn, unsigned>> held_;
};

} // namespace tps::os

#endif // TPS_OS_FRAGMENTER_HH
