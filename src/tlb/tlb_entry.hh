/**
 * @file
 * The TLB entry shared by all TLB structures.
 *
 * Entries are tagged at base-page (4 KB) VPN granularity and carry a
 * *page mask* (paper Fig. 7): the set of low VPN bits that are actually
 * page offset for this entry's page size.  A lookup masks the incoming
 * VPN before tag comparison -- one extra AND gate per way -- which is the
 * TPS any-page-size matching rule.  Conventional fixed-size structures
 * simply always use a zero mask.
 */

#ifndef TPS_TLB_TLB_ENTRY_HH
#define TPS_TLB_TLB_ENTRY_HH

#include <cstdint>

#include "util/bitops.hh"
#include "vm/addr.hh"
#include "vm/pte.hh"

namespace tps::tlb {

using vm::Paddr;
using vm::Pfn;
using vm::Vaddr;
using vm::Vpn;

/** One translation cached in some TLB structure. */
struct TlbEntry
{
    bool valid = false;
    Vpn vpnTag = 0;        //!< base-page VPN with offset-excess bits zero
    uint64_t vpnMask = 0;  //!< low VPN bits that are offset (1 = ignore)
    Pfn pfn = 0;           //!< true (aligned) frame number
    unsigned pageBits = vm::kBasePageBits;
    bool writable = false;
    bool user = false;
    bool noExecute = false;
    bool accessed = false; //!< cached A bit (suppresses PTE A writes)
    bool dirty = false;    //!< cached D bit (suppresses PTE D writes)
    Paddr truePtePaddr = 0; //!< where A/D updates must be written
    uint64_t lastUse = 0;  //!< LRU timestamp, maintained by the structure

    /** Build an entry from a decoded leaf. */
    static TlbEntry
    fromLeaf(Vaddr va, const vm::LeafInfo &leaf, Paddr true_pte_paddr)
    {
        TlbEntry e;
        e.valid = true;
        unsigned excess = leaf.pageBits - vm::kBasePageBits;
        e.vpnMask = lowMask(excess);
        e.vpnTag = (va >> vm::kBasePageBits) & ~e.vpnMask;
        e.pfn = leaf.pfn;
        e.pageBits = leaf.pageBits;
        e.writable = leaf.writable;
        e.user = leaf.user;
        e.noExecute = leaf.noExecute;
        e.accessed = leaf.accessed;
        e.dirty = leaf.dirty;
        e.truePtePaddr = true_pte_paddr;
        return e;
    }

    /** Masked tag match against a base-page VPN. */
    bool
    matches(Vpn vpn) const
    {
        return valid && ((vpn & ~vpnMask) == vpnTag);
    }

    /** Translate @p va (must match) to its physical address. */
    Paddr
    translate(Vaddr va) const
    {
        return (pfn << vm::kBasePageBits) + vm::pageOffset(va, pageBits);
    }

    /** VA of the first byte of the mapped page. */
    Vaddr pageBase() const { return vpnTag << vm::kBasePageBits; }
};

/** Statistics common to all TLB structures. */
struct TlbStats
{
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t fills = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
};

} // namespace tps::tlb

#endif // TPS_TLB_TLB_ENTRY_HH
