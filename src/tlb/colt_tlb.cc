#include "tlb/colt_tlb.hh"

#include "util/logging.hh"

namespace tps::tlb {

ColtTlb::ColtTlb(unsigned entries, unsigned ways)
    : ways_(ways)
{
    tps_assert(ways_ > 0 && entries > 0 && entries % ways_ == 0);
    sets_ = entries / ways_;
    tps_assert(isPowerOfTwo(sets_));
    entries_.resize(entries);
}

const ColtEntry *
ColtTlb::probe(Vaddr va) const
{
    Vpn vpn = vm::vpnOf(va);
    unsigned set = setIndex(vpn);
    const ColtEntry *base = &entries_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w)
        if (base[w].covers(vpn))
            return &base[w];
    return nullptr;
}

void
ColtTlb::fill(const ColtEntry &entry)
{
    tps_assert(entry.valid && entry.length >= 1 &&
               entry.length <= kClusterPages);
    // The run must not cross an aligned cluster boundary, or set indexing
    // would split it.
    tps_assert(entry.startVpn / kClusterPages ==
               (entry.startVpn + entry.length - 1) / kClusterPages);
    ++tick_;
    unsigned set = setIndex(entry.startVpn);
    ColtEntry *base = &entries_[set * ways_];

    // Coalesce-in-place: replace an entry this run subsumes or equals.
    for (unsigned w = 0; w < ways_; ++w) {
        ColtEntry &e = base[w];
        if (e.valid && e.startVpn >= entry.startVpn &&
            e.startVpn + e.length <= entry.startVpn + entry.length) {
            e = entry;
            e.lastUse = tick_;
            return;
        }
    }

    ColtEntry *victim = &base[0];
    for (unsigned w = 0; w < ways_; ++w) {
        ColtEntry &e = base[w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    if (victim->valid)
        ++stats_.evictions;
    *victim = entry;
    victim->lastUse = tick_;
    ++stats_.fills;
}

void
ColtTlb::invalidate(Vaddr va)
{
    Vpn vpn = vm::vpnOf(va);
    unsigned set = setIndex(vpn);
    ColtEntry *base = &entries_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].covers(vpn)) {
            base[w].valid = false;
            ++stats_.invalidations;
        }
    }
}

void
ColtTlb::flush()
{
    for (auto &e : entries_)
        e.valid = false;
    ++stats_.invalidations;
}

unsigned
ColtTlb::occupancy() const
{
    unsigned n = 0;
    for (const auto &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

double
ColtTlb::coalescingFactor() const
{
    uint64_t pages = 0;
    uint64_t valid = 0;
    for (const auto &e : entries_) {
        if (e.valid) {
            ++valid;
            pages += e.length;
        }
    }
    return valid == 0 ? 0.0
                      : static_cast<double>(pages) /
                            static_cast<double>(valid);
}

} // namespace tps::tlb
