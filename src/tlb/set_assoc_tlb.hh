/**
 * @file
 * Set-associative, LRU TLB.
 *
 * Supports a *set* of page sizes in one physical structure by probing one
 * set per live page size (multi-probe, in the spirit of size-prediction /
 * skewed-associative designs the paper cites as alternatives).  With a
 * single supported size this degenerates to the conventional
 * index-by-VPN-low-bits design.  Per-size live-entry counters keep the
 * probe count at the number of sizes actually resident, not the number
 * supported.
 */

#ifndef TPS_TLB_SET_ASSOC_TLB_HH
#define TPS_TLB_SET_ASSOC_TLB_HH

#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "tlb/tlb_entry.hh"

namespace tps::tlb {

/** A set-associative TLB. */
class SetAssocTlb
{
  public:
    /**
     * @param name    Human-readable name for stat dumps.
     * @param entries Total entry count (sets * ways).
     * @param ways    Associativity; must divide entries.
     * @param page_bits_list  Page sizes (log2) this structure may hold.
     */
    SetAssocTlb(std::string name, unsigned entries, unsigned ways,
                std::vector<unsigned> page_bits_list);

    /**
     * Look up @p va.
     * @return matching entry or nullptr; stats updated, LRU touched.
     */
    TlbEntry *
    lookup(Vaddr va)
    {
        ++stats_.lookups;
        ++tick_;
        Vpn vpn = vm::vpnOf(va);
        // Kick off the key-line fetches for every live size before
        // probing any of them: the per-size sets scatter across the
        // key array, and issuing the loads together overlaps their
        // latencies.
        for (uint32_t m = liveMask_; m != 0; m &= m - 1) {
            unsigned pb = vm::kBasePageBits +
                          static_cast<unsigned>(std::countr_zero(m));
            __builtin_prefetch(&keys_[setIndex(va, pb) * ways_]);
        }
        // Iterate only the live page sizes, ascending (bit i of the
        // mask = size kBasePageBits + i), preserving the smallest-
        // size-first match order of the supported-size list.
        for (uint32_t m = liveMask_; m != 0; m &= m - 1) {
            unsigned pb = vm::kBasePageBits +
                          static_cast<unsigned>(std::countr_zero(m));
            // One packed-key compare per way: a set probe reads 8
            // bytes/way instead of a whole TlbEntry, so the 13-size
            // TPS STLB scan stays within a cache line or two per size.
            uint64_t needle =
                keyOf(pb, vpn & ~lowMask(pb - vm::kBasePageBits));
            unsigned set = setIndex(va, pb);
            const uint64_t *keys = &keys_[set * ways_];
            for (unsigned w = 0; w < ways_; ++w) {
                if (keys[w] == needle) {
                    size_t i = set * ways_ + w;
                    TlbEntry &e = entries_[i];
                    e.lastUse = tick_;
                    lastUses_[i] = tick_;
                    ++stats_.hits;
                    return &e;
                }
            }
        }
        ++stats_.misses;
        return nullptr;
    }

    /** Probe without disturbing LRU or stats (for tests/inspection). */
    const TlbEntry *probe(Vaddr va) const;

    /** Mutable probe without stats (for A/D updates after a fill). */
    TlbEntry *
    findMutable(Vaddr va)
    {
        return const_cast<TlbEntry *>(
            static_cast<const SetAssocTlb *>(this)->probe(va));
    }

    /**
     * Install @p entry (its pageBits must be supported).
     * @return the slot it now occupies.
     */
    TlbEntry *fill(const TlbEntry &entry);

    /** Invalidate any entry mapping @p va. */
    void invalidate(Vaddr va);

    /** Invalidate everything. */
    void flush();

    /** True iff this structure can hold a page of 2^@p page_bits. */
    bool supports(unsigned page_bits) const;

    const TlbStats &stats() const { return stats_; }
    void clearStats() { stats_ = TlbStats{}; }
    const std::string &name() const { return name_; }
    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }

    /** Number of valid entries currently resident. */
    unsigned occupancy() const;

    /** Visit every valid entry without disturbing state. */
    void
    forEachEntry(const std::function<void(const TlbEntry &)> &visit) const
    {
        for (const TlbEntry &e : entries_)
            if (e.valid)
                visit(e);
    }

  private:
    unsigned
    setIndex(Vaddr va, unsigned page_bits) const
    {
        return static_cast<unsigned>((va >> page_bits) & (sets_ - 1));
    }

    TlbEntry *
    findInSet(unsigned set, Vpn vpn, unsigned page_bits)
    {
        TlbEntry *base = &entries_[set * ways_];
        for (unsigned w = 0; w < ways_; ++w) {
            TlbEntry &e = base[w];
            if (e.valid && e.pageBits == page_bits && e.matches(vpn))
                return &e;
        }
        return nullptr;
    }

    /** Key no valid entry can produce (pageBits < 256, VPN < 2^52). */
    static constexpr uint64_t kInvalidKey = ~0ull;

    /** Packed (pageBits, masked VPN tag) identity of a valid entry. */
    static constexpr uint64_t
    keyOf(unsigned page_bits, Vpn tag)
    {
        return (static_cast<uint64_t>(page_bits) << 56) | tag;
    }

    /**
     * Mirror entries_[i]'s identity into the packed key array.
     * Invalid slots get stamp 0 -- below every valid stamp (ticks
     * start at 1) -- so the fill victim scan is a plain first-minimum
     * over lastUses_ with no separate invalid check.
     */
    void
    syncKey(size_t i)
    {
        const TlbEntry &e = entries_[i];
        keys_[i] = e.valid ? keyOf(e.pageBits, e.vpnTag) : kInvalidKey;
        lastUses_[i] = e.valid ? e.lastUse : 0;
    }

    std::string name_;
    unsigned sets_;
    unsigned ways_;
    std::vector<unsigned> pageBitsList_;
    //! Bit (pb - kBasePageBits) set iff pb is in pageBitsList_.
    uint32_t supportMask_ = 0;
    std::vector<TlbEntry> entries_;   //!< sets_ x ways_, row-major
    //! Packed identity shadow of entries_ for the hot probe loop.
    std::vector<uint64_t> keys_;
    //! LRU-stamp shadow for the fill victim scan (valid slots only).
    std::vector<uint64_t> lastUses_;
    std::vector<uint64_t> livePerSize_; //!< indexed by page_bits
    //! Bit (pb - kBasePageBits) set iff livePerSize_[pb] > 0.
    uint32_t liveMask_ = 0;
    uint64_t tick_ = 0;
    TlbStats stats_;
};

} // namespace tps::tlb

#endif // TPS_TLB_SET_ASSOC_TLB_HH
