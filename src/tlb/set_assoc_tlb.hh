/**
 * @file
 * Set-associative, LRU TLB.
 *
 * Supports a *set* of page sizes in one physical structure by probing one
 * set per live page size (multi-probe, in the spirit of size-prediction /
 * skewed-associative designs the paper cites as alternatives).  With a
 * single supported size this degenerates to the conventional
 * index-by-VPN-low-bits design.  Per-size live-entry counters keep the
 * probe count at the number of sizes actually resident, not the number
 * supported.
 */

#ifndef TPS_TLB_SET_ASSOC_TLB_HH
#define TPS_TLB_SET_ASSOC_TLB_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "tlb/tlb_entry.hh"

namespace tps::tlb {

/** A set-associative TLB. */
class SetAssocTlb
{
  public:
    /**
     * @param name    Human-readable name for stat dumps.
     * @param entries Total entry count (sets * ways).
     * @param ways    Associativity; must divide entries.
     * @param page_bits_list  Page sizes (log2) this structure may hold.
     */
    SetAssocTlb(std::string name, unsigned entries, unsigned ways,
                std::vector<unsigned> page_bits_list);

    /**
     * Look up @p va.
     * @return matching entry or nullptr; stats updated, LRU touched.
     */
    TlbEntry *lookup(Vaddr va);

    /** Probe without disturbing LRU or stats (for tests/inspection). */
    const TlbEntry *probe(Vaddr va) const;

    /** Mutable probe without stats (for A/D updates after a fill). */
    TlbEntry *
    findMutable(Vaddr va)
    {
        return const_cast<TlbEntry *>(
            static_cast<const SetAssocTlb *>(this)->probe(va));
    }

    /**
     * Install @p entry (its pageBits must be supported).
     * @return true if an existing valid entry was evicted.
     */
    bool fill(const TlbEntry &entry);

    /** Invalidate any entry mapping @p va. */
    void invalidate(Vaddr va);

    /** Invalidate everything. */
    void flush();

    /** True iff this structure can hold a page of 2^@p page_bits. */
    bool supports(unsigned page_bits) const;

    const TlbStats &stats() const { return stats_; }
    void clearStats() { stats_ = TlbStats{}; }
    const std::string &name() const { return name_; }
    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }

    /** Number of valid entries currently resident. */
    unsigned occupancy() const;

    /** Visit every valid entry without disturbing state. */
    void
    forEachEntry(const std::function<void(const TlbEntry &)> &visit) const
    {
        for (const TlbEntry &e : entries_)
            if (e.valid)
                visit(e);
    }

  private:
    unsigned setIndex(Vaddr va, unsigned page_bits) const;
    TlbEntry *findInSet(unsigned set, Vpn vpn, unsigned page_bits);

    std::string name_;
    unsigned sets_;
    unsigned ways_;
    std::vector<unsigned> pageBitsList_;
    std::vector<TlbEntry> entries_;   //!< sets_ x ways_, row-major
    std::vector<uint64_t> livePerSize_; //!< indexed by page_bits
    uint64_t tick_ = 0;
    TlbStats stats_;
};

} // namespace tps::tlb

#endif // TPS_TLB_SET_ASSOC_TLB_HH
