/**
 * @file
 * Fully associative, LRU, any-page-size TLB -- the TPS L1 TLB (Fig. 7).
 *
 * Every entry carries a page-mask field populated at fill time; lookups
 * mask the incoming VPN with each entry's mask before the CAM compare.
 * The paper argues this adds one gate delay and that a 32-entry instance
 * meets L1 timing (AMD Zen ships a 64-entry any-size L1 DTLB).
 */

#ifndef TPS_TLB_FULLY_ASSOC_TLB_HH
#define TPS_TLB_FULLY_ASSOC_TLB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tlb/any_size_tlb.hh"

namespace tps::tlb {

/** A fully associative any-size TLB. */
class FullyAssocTlb : public AnySizeTlb
{
  public:
    /**
     * @param name     Name for stat dumps.
     * @param entries  Entry count.
     */
    FullyAssocTlb(std::string name, unsigned entries);

    /** Look up @p va; stats updated, LRU touched on hit. */
    TlbEntry *
    lookup(Vaddr va) override
    {
        ++stats_.lookups;
        ++tick_;
        Vpn vpn = vm::vpnOf(va);
        // Hot compare over the packed (mask, tag) arrays; invalid
        // slots carry the unreachable sentinel tag so no valid bit
        // is consulted here.
        size_t n = tags_.size();
        for (size_t i = 0; i < n; ++i) {
            if ((vpn & ~masks_[i]) == tags_[i]) {
                TlbEntry &e = entries_[i];
                e.lastUse = tick_;
                lastUses_[i] = tick_;
                ++stats_.hits;
                return &e;
            }
        }
        ++stats_.misses;
        return nullptr;
    }

    /** Probe without disturbing LRU or stats. */
    const TlbEntry *probe(Vaddr va) const override;

    /** Mutable probe without stats (for A/D updates after a fill). */
    TlbEntry *
    findMutable(Vaddr va) override
    {
        return const_cast<TlbEntry *>(
            static_cast<const FullyAssocTlb *>(this)->probe(va));
    }

    /**
     * Install @p entry, replacing the LRU entry if full.
     * @return the slot it now occupies.
     */
    TlbEntry *fill(const TlbEntry &entry) override;

    /** Single-pass fused fill + probe (see AnySizeTlb::fillAndFind). */
    TlbEntry *fillAndFind(const TlbEntry &entry, Vaddr base) override;

    /** Invalidate any entry whose page contains @p va. */
    void invalidate(Vaddr va) override;

    /** Invalidate everything. */
    void flush() override;

    const TlbStats &stats() const override { return stats_; }
    void clearStats() override { stats_ = TlbStats{}; }
    const std::string &name() const { return name_; }
    unsigned capacity() const override
    {
        return static_cast<unsigned>(entries_.size());
    }
    unsigned occupancy() const override;

    /** Entries, for inspection by tests and the page-size census. */
    const std::vector<TlbEntry> &entries() const { return entries_; }

    void
    forEachEntry(const EntryVisitor &visit) const override
    {
        for (const TlbEntry &e : entries_)
            if (e.valid)
                visit(e);
    }

  private:
    /** Sentinel tag no VPN can equal (VPNs use < 64 bits). */
    static constexpr Vpn kInvalidTag = ~Vpn(0);

    /**
     * Mirror entries_[i]'s tag state into the packed arrays.  Invalid
     * slots get stamp 0 -- below every valid stamp (ticks start at 1)
     * -- so the fill victim scan is a plain first-minimum over
     * lastUses_ with no separate invalid check.
     */
    void
    syncSlot(size_t i)
    {
        const TlbEntry &e = entries_[i];
        masks_[i] = e.valid ? e.vpnMask : 0;
        tags_[i] = e.valid ? e.vpnTag : kInvalidTag;
        lastUses_[i] = e.valid ? e.lastUse : 0;
    }

    std::string name_;
    std::vector<TlbEntry> entries_;
    // Structure-of-arrays shadow of (vpnMask, vpnTag) for the CAM
    // compare; kept in sync by fill/invalidate/flush.
    std::vector<uint64_t> masks_;
    std::vector<Vpn> tags_;
    //! LRU-stamp shadow for the fill victim scan (valid slots only).
    std::vector<uint64_t> lastUses_;
    uint64_t tick_ = 0;
    TlbStats stats_;
};

} // namespace tps::tlb

#endif // TPS_TLB_FULLY_ASSOC_TLB_HH
