/**
 * @file
 * Fully associative, LRU, any-page-size TLB -- the TPS L1 TLB (Fig. 7).
 *
 * Every entry carries a page-mask field populated at fill time; lookups
 * mask the incoming VPN with each entry's mask before the CAM compare.
 * The paper argues this adds one gate delay and that a 32-entry instance
 * meets L1 timing (AMD Zen ships a 64-entry any-size L1 DTLB).
 */

#ifndef TPS_TLB_FULLY_ASSOC_TLB_HH
#define TPS_TLB_FULLY_ASSOC_TLB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tlb/any_size_tlb.hh"

namespace tps::tlb {

/** A fully associative any-size TLB. */
class FullyAssocTlb : public AnySizeTlb
{
  public:
    /**
     * @param name     Name for stat dumps.
     * @param entries  Entry count.
     */
    FullyAssocTlb(std::string name, unsigned entries);

    /** Look up @p va; stats updated, LRU touched on hit. */
    TlbEntry *lookup(Vaddr va) override;

    /** Probe without disturbing LRU or stats. */
    const TlbEntry *probe(Vaddr va) const override;

    /** Mutable probe without stats (for A/D updates after a fill). */
    TlbEntry *
    findMutable(Vaddr va) override
    {
        return const_cast<TlbEntry *>(
            static_cast<const FullyAssocTlb *>(this)->probe(va));
    }

    /**
     * Install @p entry, replacing the LRU entry if full.
     * @return true if a valid entry was evicted.
     */
    bool fill(const TlbEntry &entry) override;

    /** Invalidate any entry whose page contains @p va. */
    void invalidate(Vaddr va) override;

    /** Invalidate everything. */
    void flush() override;

    const TlbStats &stats() const override { return stats_; }
    void clearStats() override { stats_ = TlbStats{}; }
    const std::string &name() const { return name_; }
    unsigned capacity() const override
    {
        return static_cast<unsigned>(entries_.size());
    }
    unsigned occupancy() const override;

    /** Entries, for inspection by tests and the page-size census. */
    const std::vector<TlbEntry> &entries() const { return entries_; }

    void
    forEachEntry(const EntryVisitor &visit) const override
    {
        for (const TlbEntry &e : entries_)
            if (e.valid)
                visit(e);
    }

  private:
    std::string name_;
    std::vector<TlbEntry> entries_;
    uint64_t tick_ = 0;
    TlbStats stats_;
};

} // namespace tps::tlb

#endif // TPS_TLB_FULLY_ASSOC_TLB_HH
