#include "tlb/range_tlb.hh"

#include "util/logging.hh"

namespace tps::tlb {

RangeTlb::RangeTlb(unsigned entries)
{
    tps_assert(entries > 0);
    ranges_.resize(entries);
}

RangeEntry *
RangeTlb::lookup(Vaddr va)
{
    ++stats_.lookups;
    ++tick_;
    Vpn vpn = vm::vpnOf(va);
    for (auto &r : ranges_) {
        if (r.covers(vpn)) {
            r.lastUse = tick_;
            ++stats_.hits;
            return &r;
        }
    }
    ++stats_.misses;
    return nullptr;
}

const RangeEntry *
RangeTlb::probe(Vaddr va) const
{
    Vpn vpn = vm::vpnOf(va);
    for (const auto &r : ranges_)
        if (r.covers(vpn))
            return &r;
    return nullptr;
}

void
RangeTlb::fill(const RangeEntry &entry)
{
    tps_assert(entry.valid && entry.baseVpn <= entry.limitVpn);
    ++tick_;

    // Refresh an identical or overlapping stale range in place.
    for (auto &r : ranges_) {
        if (r.valid && r.baseVpn == entry.baseVpn) {
            r = entry;
            r.lastUse = tick_;
            return;
        }
    }

    RangeEntry *victim = &ranges_[0];
    for (auto &r : ranges_) {
        if (!r.valid) {
            victim = &r;
            break;
        }
        if (r.lastUse < victim->lastUse)
            victim = &r;
    }
    if (victim->valid)
        ++stats_.evictions;
    *victim = entry;
    victim->lastUse = tick_;
    ++stats_.fills;
}

void
RangeTlb::invalidate(Vaddr va)
{
    Vpn vpn = vm::vpnOf(va);
    for (auto &r : ranges_) {
        if (r.covers(vpn)) {
            r.valid = false;
            ++stats_.invalidations;
        }
    }
}

void
RangeTlb::flush()
{
    for (auto &r : ranges_)
        r.valid = false;
    ++stats_.invalidations;
}

TlbEntry
RangeTlb::makeBasePageEntry(Vaddr va, const RangeEntry &r)
{
    Vpn vpn = vm::vpnOf(va);
    tps_assert(r.covers(vpn));
    TlbEntry e;
    e.valid = true;
    e.vpnTag = vpn;
    e.vpnMask = 0;
    e.pfn = static_cast<Pfn>(static_cast<int64_t>(vpn) + r.offset);
    e.pageBits = vm::kBasePageBits;
    e.writable = r.writable;
    e.user = r.user;
    // Ranges are installed by the OS for already-touched memory; treat
    // A as set so the fill does not trigger a spurious PTE write.
    e.accessed = true;
    return e;
}

unsigned
RangeTlb::occupancy() const
{
    unsigned n = 0;
    for (const auto &r : ranges_)
        n += r.valid ? 1 : 0;
    return n;
}

} // namespace tps::tlb
