/**
 * @file
 * Interface for any-page-size L1 TLB structures.  The paper's primary
 * design is a 32-entry fully associative TLB (Sec. III-A2); it also
 * notes that skewed-associative designs (Seznec; Papadopoulou et al.)
 * are possible.  Both are provided behind this interface so the
 * hierarchy (and the ablation bench) can swap them.
 */

#ifndef TPS_TLB_ANY_SIZE_TLB_HH
#define TPS_TLB_ANY_SIZE_TLB_HH

#include <functional>

#include "tlb/tlb_entry.hh"

namespace tps::tlb {

/** An L1 TLB able to hold entries of every page size. */
class AnySizeTlb
{
  public:
    virtual ~AnySizeTlb() = default;

    /** Look up @p va; stats updated, replacement state touched. */
    virtual TlbEntry *lookup(Vaddr va) = 0;

    /** Probe without disturbing state. */
    virtual const TlbEntry *probe(Vaddr va) const = 0;

    /** Mutable probe without stats (A/D updates after a fill). */
    virtual TlbEntry *findMutable(Vaddr va) = 0;

    /** Install @p entry. @return the slot it now occupies. */
    virtual TlbEntry *fill(const TlbEntry &entry) = 0;

    /**
     * fill(@p entry) followed by findMutable(@p base) as one operation:
     * the returned slot is the first in probe order covering @p base
     * after the install, which may be a stale smaller entry shadowing
     * the new fill (the A/D-target subtlety in installL1).  Structures
     * override this to fuse the two scans; semantics are exactly the
     * two calls in sequence.
     */
    virtual TlbEntry *
    fillAndFind(const TlbEntry &entry, Vaddr base)
    {
        fill(entry);
        return findMutable(base);
    }

    /** Invalidate any entry whose page contains @p va. */
    virtual void invalidate(Vaddr va) = 0;

    /** Invalidate everything. */
    virtual void flush() = 0;

    virtual const TlbStats &stats() const = 0;
    virtual void clearStats() = 0;
    virtual unsigned capacity() const = 0;
    virtual unsigned occupancy() const = 0;

    /** Visitor over valid entries (invariant checking / census). */
    using EntryVisitor = std::function<void(const TlbEntry &)>;

    /** Visit every valid entry without disturbing state. */
    virtual void forEachEntry(const EntryVisitor &visit) const = 0;
};

} // namespace tps::tlb

#endif // TPS_TLB_ANY_SIZE_TLB_HH
