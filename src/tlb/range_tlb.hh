/**
 * @file
 * Range TLB for the Redundant Memory Mappings (RMM) baseline
 * (Karakostas et al., ISCA 2015), as described in the paper's Sec. V.
 *
 * Each entry is a segment-like range translation: [baseVpn, limitVpn]
 * mapped with a constant VPN->PFN offset.  The range TLB sits at the L2
 * level and is probed in parallel with the STLB on an L1 miss; a hit
 * constructs the base-page PTE, which is then installed into the L1 TLB.
 * Because each 4 KB page still occupies its own L1 entry, RMM eliminates
 * page walks but not L1 TLB misses -- exactly the contrast TPS draws.
 */

#ifndef TPS_TLB_RANGE_TLB_HH
#define TPS_TLB_RANGE_TLB_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "tlb/tlb_entry.hh"

namespace tps::tlb {

/** One cached range translation (a Range Table Entry). */
struct RangeEntry
{
    bool valid = false;
    Vpn baseVpn = 0;    //!< first base page of the range
    Vpn limitVpn = 0;   //!< last base page of the range (inclusive)
    int64_t offset = 0; //!< pfn = vpn + offset
    bool writable = false;
    bool user = false;
    uint64_t lastUse = 0;

    bool
    covers(Vpn vpn) const
    {
        return valid && vpn >= baseVpn && vpn <= limitVpn;
    }
};

/** The fully associative range TLB. */
class RangeTlb
{
  public:
    /** @param entries  Range-entry capacity (paper-scale: 32). */
    explicit RangeTlb(unsigned entries);

    /** Look up the range covering @p va; stats + LRU updated. */
    RangeEntry *lookup(Vaddr va);

    /** Probe without disturbing state. */
    const RangeEntry *probe(Vaddr va) const;

    /** Install a range translation (LRU replacement). */
    void fill(const RangeEntry &entry);

    /** Drop ranges covering @p va. */
    void invalidate(Vaddr va);

    /** Drop everything. */
    void flush();

    /** Synthesize the base-page TLB entry for @p va from range @p r. */
    static TlbEntry makeBasePageEntry(Vaddr va, const RangeEntry &r);

    const TlbStats &stats() const { return stats_; }
    void clearStats() { stats_ = TlbStats{}; }
    unsigned capacity() const { return static_cast<unsigned>(ranges_.size()); }
    unsigned occupancy() const;

    /** Visit every valid range without disturbing state. */
    void
    forEachRange(const std::function<void(const RangeEntry &)> &visit) const
    {
        for (const RangeEntry &e : ranges_)
            if (e.valid)
                visit(e);
    }

  private:
    std::vector<RangeEntry> ranges_;
    uint64_t tick_ = 0;
    TlbStats stats_;
};

} // namespace tps::tlb

#endif // TPS_TLB_RANGE_TLB_HH
