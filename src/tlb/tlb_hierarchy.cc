#include "tlb/tlb_hierarchy.hh"

#include "obs/event_trace.hh"
#include "obs/stats_bindings.hh"
#include "util/logging.hh"

namespace tps::tlb {

namespace {

/** Every page size TPS can produce, for the multi-size STLB. */
std::vector<unsigned>
allPageSizes()
{
    std::vector<unsigned> sizes;
    for (unsigned pb = vm::kBasePageBits; pb <= vm::kMaxPageBits; ++pb)
        sizes.push_back(pb);
    return sizes;
}

} // namespace

TlbHierarchy::TlbHierarchy(const TlbHierarchyConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.design == TlbDesign::Colt) {
        coltL1_ = std::make_unique<ColtTlb>(cfg_.l1SmallEntries,
                                            cfg_.coltWays);
    } else {
        l1Small_ = std::make_unique<SetAssocTlb>(
            "L1D-4K", cfg_.l1SmallEntries, cfg_.l1SmallWays,
            std::vector<unsigned>{vm::kPageBits4K});
    }

    if (cfg_.design == TlbDesign::Tps) {
        // The TPS TLB replaces the 2 MB and 1 GB split L1s; the
        // skewed-associative variant is the paper's cited alternative.
        if (cfg_.tpsTlbSkewed) {
            tpsL1_ = std::make_unique<SkewedAssocTlb>(
                "L1D-TPS-skew", cfg_.tpsTlbEntries,
                cfg_.tpsTlbSkewWays);
        } else {
            tpsL1_ = std::make_unique<FullyAssocTlb>(
                "L1D-TPS", cfg_.tpsTlbEntries);
        }
    } else {
        l1Large_ = std::make_unique<FullyAssocTlb>("L1D-2M",
                                                   cfg_.l1LargeEntries);
        l1Huge_ = std::make_unique<FullyAssocTlb>("L1D-1G",
                                                  cfg_.l1HugeEntries);
    }

    std::vector<unsigned> stlb_sizes =
        cfg_.design == TlbDesign::Tps
            ? allPageSizes()
            : std::vector<unsigned>{vm::kPageBits4K, vm::kPageBits2M};
    stlb_ = std::make_unique<SetAssocTlb>("STLB", cfg_.stlbEntries,
                                          cfg_.stlbWays, stlb_sizes);
    stlbHuge_ = std::make_unique<FullyAssocTlb>("STLB-1G",
                                                cfg_.stlbHugeEntries);

    if (cfg_.design == TlbDesign::Rmm)
        rangeTlb_ = std::make_unique<RangeTlb>(cfg_.rangeTlbEntries);
}

TlbLookupResult
TlbHierarchy::lookupL1(Vaddr va)
{
    TlbLookupResult res;
    if (coltL1_) {
        if (ColtEntry *ce = coltL1_->lookup(va)) {
            res.level = TlbHitLevel::L1;
            res.fromColt = true;
            res.paddr = ColtTlb::translate(va, *ce);
            return res;
        }
    }
    if (l1Small_) {
        if (TlbEntry *e = l1Small_->lookup(va)) {
            res.level = TlbHitLevel::L1;
            res.entry = e;
            res.paddr = e->translate(va);
            return res;
        }
    }
    if (tpsL1_) {
        if (TlbEntry *e = tpsL1_->lookup(va)) {
            res.level = TlbHitLevel::L1;
            res.entry = e;
            res.paddr = e->translate(va);
            return res;
        }
    }
    if (l1Large_) {
        if (TlbEntry *e = l1Large_->lookup(va)) {
            res.level = TlbHitLevel::L1;
            res.entry = e;
            res.paddr = e->translate(va);
            return res;
        }
    }
    if (l1Huge_) {
        if (TlbEntry *e = l1Huge_->lookup(va)) {
            res.level = TlbHitLevel::L1;
            res.entry = e;
            res.paddr = e->translate(va);
            return res;
        }
    }
    res.level = TlbHitLevel::Miss;
    return res;
}

TlbEntry *
TlbHierarchy::installL1(const TlbEntry &entry)
{
    Vaddr base = entry.pageBase();
    if (cfg_.design == TlbDesign::Colt &&
        entry.pageBits == vm::kBasePageBits) {
        // Uncoalesced single-page fill; the MMU fills coalesced runs
        // directly through coltTlb().
        ColtEntry ce;
        ce.valid = true;
        ce.startVpn = entry.vpnTag;
        ce.length = 1;
        ce.startPfn = entry.pfn;
        ce.writable = entry.writable;
        ce.user = entry.user;
        coltL1_->fill(ce);
        return nullptr;
    }
    if (entry.pageBits == vm::kBasePageBits && l1Small_)
        return l1Small_->fill(entry);
    if (tpsL1_) {
        // Any-size structure: a stale smaller entry covering the same
        // page may shadow the new fill in probe order, so the A/D
        // target must come from a probe, not the fill slot.  The fused
        // call does both in one scan.
        return tpsL1_->fillAndFind(entry, base);
    }
    if (entry.pageBits == vm::kPageBits2M)
        return l1Large_->fill(entry);
    if (entry.pageBits == vm::kPageBits1G && l1Huge_)
        return l1Huge_->fill(entry);
    // No L1 structure supports this page size (e.g. tailored pages on a
    // design without the TPS TLB): the translation lives only in the
    // L2 structures, exactly as hardware without the support would
    // behave.
    return nullptr;
}

TlbLookupResult
TlbHierarchy::lookup(Vaddr va)
{
    ++stats_.accesses;
    TlbLookupResult res = lookupL1(va);
    if (res.level == TlbHitLevel::L1) {
        ++stats_.l1Hits;
        return res;
    }
    ++stats_.l1Misses;
    return lookupL2Tail(va, res);
}

TlbLookupResult
TlbHierarchy::lookupL2Tail(Vaddr va, TlbLookupResult res)
{
    // L2: STLB (and, for RMM, the range TLB in parallel).
    TlbEntry *stlb_hit = nullptr;
    if (stlb_)
        stlb_hit = stlb_->lookup(va);
    if (!stlb_hit && stlbHuge_)
        stlb_hit = stlbHuge_->lookup(va);
    RangeEntry *range_hit = rangeTlb_ ? rangeTlb_->lookup(va) : nullptr;

    if (stlb_hit) {
        ++stats_.l2Hits;
        res.level = TlbHitLevel::L2;
        res.entry = installL1(*stlb_hit);
        res.paddr = stlb_hit->translate(va);
        return res;
    }
    if (range_hit) {
        ++stats_.l2Hits;
        ++stats_.rangeHits;
        res.level = TlbHitLevel::L2;
        res.fromRange = true;
        TlbEntry constructed = RangeTlb::makeBasePageEntry(va, *range_hit);
        // The range path has no PTE address; A/D charging is handled by
        // the range-table software path, so mark both bits set.
        constructed.dirty = true;
        res.entry = installL1(constructed);
        res.paddr = constructed.translate(va);
        return res;
    }

    ++stats_.misses;
    res.level = TlbHitLevel::Miss;
    return res;
}

TlbEntry *
TlbHierarchy::fill(Vaddr va, const TlbEntry &entry)
{
    tps_assert(entry.valid);
    // Inclusive-ish: install in the STLB as well as L1.
    if (entry.pageBits == vm::kPageBits1G)
        stlbHuge_->fill(entry);
    else if (stlb_->supports(entry.pageBits))
        stlb_->fill(entry);
    (void)va;
    return installL1(entry);
}

void
TlbHierarchy::shootdown(Vaddr va)
{
    if (trace_)
        trace_->tlbShootdown(va);
    if (l1Small_)
        l1Small_->invalidate(va);
    if (coltL1_)
        coltL1_->invalidate(va);
    if (tpsL1_)
        tpsL1_->invalidate(va);
    if (l1Large_)
        l1Large_->invalidate(va);
    if (l1Huge_)
        l1Huge_->invalidate(va);
    if (stlb_)
        stlb_->invalidate(va);
    if (stlbHuge_)
        stlbHuge_->invalidate(va);
    if (rangeTlb_)
        rangeTlb_->invalidate(va);
}

void
TlbHierarchy::flushAll()
{
    if (trace_)
        trace_->tlbFlush();
    if (l1Small_)
        l1Small_->flush();
    if (coltL1_)
        coltL1_->flush();
    if (tpsL1_)
        tpsL1_->flush();
    if (l1Large_)
        l1Large_->flush();
    if (l1Huge_)
        l1Huge_->flush();
    if (stlb_)
        stlb_->flush();
    if (stlbHuge_)
        stlbHuge_->flush();
    if (rangeTlb_)
        rangeTlb_->flush();
}

void
TlbHierarchy::clearStats()
{
    stats_ = TlbHierarchyStats{};
    if (l1Small_)
        l1Small_->clearStats();
    if (coltL1_)
        coltL1_->clearStats();
    if (tpsL1_)
        tpsL1_->clearStats();
    if (l1Large_)
        l1Large_->clearStats();
    if (l1Huge_)
        l1Huge_->clearStats();
    if (stlb_)
        stlb_->clearStats();
    if (stlbHuge_)
        stlbHuge_->clearStats();
    if (rangeTlb_)
        rangeTlb_->clearStats();
}

void
TlbHierarchy::registerStats(obs::StatRegistry &reg,
                            const std::string &prefix)
{
    obs::bindTlbStats(reg, prefix, &stats_);
}

} // namespace tps::tlb
