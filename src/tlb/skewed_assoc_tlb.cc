#include "tlb/skewed_assoc_tlb.hh"

#include <algorithm>

#include "util/logging.hh"

namespace tps::tlb {

SkewedAssocTlb::SkewedAssocTlb(std::string name, unsigned entries,
                               unsigned ways)
    : name_(std::move(name)), ways_(ways),
      livePerSize_(vm::kMaxPageBits + 1, 0)
{
    tps_assert(ways_ > 0 && entries > 0 && entries % ways_ == 0);
    sets_ = entries / ways_;
    tps_assert(isPowerOfTwo(sets_));
    entries_.resize(entries);
}

const TlbEntry *
SkewedAssocTlb::probe(Vaddr va) const
{
    Vpn vpn = vm::vpnOf(va);
    for (unsigned pb = vm::kBasePageBits; pb <= vm::kMaxPageBits;
         ++pb) {
        if (livePerSize_[pb] == 0)
            continue;
        for (unsigned w = 0; w < ways_; ++w) {
            const TlbEntry &e = slot(w, indexOf(w, va, pb));
            if (e.valid && e.pageBits == pb && e.matches(vpn))
                return &e;
        }
    }
    return nullptr;
}

TlbEntry *
SkewedAssocTlb::findMutable(Vaddr va)
{
    return const_cast<TlbEntry *>(
        static_cast<const SkewedAssocTlb *>(this)->probe(va));
}

TlbEntry *
SkewedAssocTlb::fill(const TlbEntry &entry)
{
    tps_assert(entry.valid);
    ++tick_;
    Vaddr base = entry.pageBase();

    // Refill over a duplicate if resident.
    for (unsigned w = 0; w < ways_; ++w) {
        TlbEntry &e = slot(w, indexOf(w, base, entry.pageBits));
        if (e.valid && e.pageBits == entry.pageBits &&
            e.vpnTag == entry.vpnTag) {
            e = entry;
            e.lastUse = tick_;
            return &e;
        }
    }

    // One candidate slot per way; prefer an invalid one, else LRU.
    TlbEntry *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        TlbEntry &e = slot(w, indexOf(w, base, entry.pageBits));
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (!victim || e.lastUse < victim->lastUse)
            victim = &e;
    }
    if (victim->valid) {
        --livePerSize_[victim->pageBits];
        ++stats_.evictions;
    }
    *victim = entry;
    victim->lastUse = tick_;
    ++livePerSize_[entry.pageBits];
    ++stats_.fills;
    return victim;
}

void
SkewedAssocTlb::invalidate(Vaddr va)
{
    for (unsigned pb = vm::kBasePageBits; pb <= vm::kMaxPageBits;
         ++pb) {
        if (livePerSize_[pb] == 0)
            continue;
        Vpn vpn = vm::vpnOf(va);
        for (unsigned w = 0; w < ways_; ++w) {
            TlbEntry &e = slot(w, indexOf(w, va, pb));
            if (e.valid && e.pageBits == pb && e.matches(vpn)) {
                e.valid = false;
                --livePerSize_[pb];
                ++stats_.invalidations;
            }
        }
    }
}

void
SkewedAssocTlb::flush()
{
    for (auto &e : entries_)
        e.valid = false;
    std::fill(livePerSize_.begin(), livePerSize_.end(), 0);
    ++stats_.invalidations;
}

unsigned
SkewedAssocTlb::occupancy() const
{
    unsigned n = 0;
    for (const auto &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace tps::tlb
