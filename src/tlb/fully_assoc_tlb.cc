#include "tlb/fully_assoc_tlb.hh"

#include "util/logging.hh"

namespace tps::tlb {

FullyAssocTlb::FullyAssocTlb(std::string name, unsigned entries)
    : name_(std::move(name))
{
    tps_assert(entries > 0);
    entries_.resize(entries);
    masks_.assign(entries, 0);
    tags_.assign(entries, kInvalidTag);
    lastUses_.assign(entries, 0);
}

const TlbEntry *
FullyAssocTlb::probe(Vaddr va) const
{
    Vpn vpn = vm::vpnOf(va);
    for (const auto &e : entries_)
        if (e.matches(vpn))
            return &e;
    return nullptr;
}

TlbEntry *
FullyAssocTlb::fill(const TlbEntry &entry)
{
    tps_assert(entry.valid);
    ++tick_;

    // One pass over the packed shadows finds a duplicate (refill in
    // place) and the victim.  A tag match is necessary but not
    // sufficient for a duplicate (aligned pages of different sizes can
    // share a tag), so candidates confirm pageBits in the entry.
    // Invalid slots carry stamp 0, below every valid stamp, so the
    // first minimum over lastUses_ is the first invalid slot when one
    // exists and the first least-recently-used slot otherwise -- the
    // same choice the separate scans made.
    size_t n = tags_.size();
    size_t vi = 0;
    uint64_t best = lastUses_[0];
    for (size_t i = 0; i < n; ++i) {
        if (tags_[i] == entry.vpnTag &&
            entries_[i].pageBits == entry.pageBits) {
            TlbEntry &e = entries_[i];
            e = entry;
            e.lastUse = tick_;
            syncSlot(i);
            return &e;
        }
        bool older = lastUses_[i] < best;
        vi = older ? i : vi;
        best = older ? lastUses_[i] : best;
    }
    TlbEntry *victim = &entries_[vi];
    if (victim->valid)
        ++stats_.evictions;
    *victim = entry;
    victim->lastUse = tick_;
    syncSlot(vi);
    ++stats_.fills;
    return victim;
}

TlbEntry *
FullyAssocTlb::fillAndFind(const TlbEntry &entry, Vaddr base)
{
    tps_assert(entry.valid);
    ++tick_;

    // The fill pass from fill() above, extended to also record the
    // first probe-order slot covering @p base -- fusing the
    // findMutable() scan installL1 would otherwise run right after.
    Vpn vpn = vm::vpnOf(base);
    size_t n = tags_.size();
    size_t vi = 0;
    uint64_t best = lastUses_[0];
    size_t match = n;
    for (size_t i = 0; i < n; ++i) {
        if (match == n && (vpn & ~masks_[i]) == tags_[i])
            match = i;
        if (tags_[i] == entry.vpnTag &&
            entries_[i].pageBits == entry.pageBits) {
            // Refill in place.  The slot's (mask, tag) identity is
            // unchanged, and the new entry covers base, so the probe
            // predicate holds here -- match is already <= i and final.
            TlbEntry &e = entries_[i];
            e = entry;
            e.lastUse = tick_;
            syncSlot(i);
            return &entries_[match];
        }
        bool older = lastUses_[i] < best;
        vi = older ? i : vi;
        best = older ? lastUses_[i] : best;
    }
    TlbEntry *victim = &entries_[vi];
    if (victim->valid)
        ++stats_.evictions;
    *victim = entry;
    victim->lastUse = tick_;
    syncSlot(vi);
    ++stats_.fills;
    // Post-install, every slot except the victim kept its pre-scan
    // predicate value and the victim always matches (the new entry
    // covers base), so the first probe-order match is min(match, vi) --
    // a pre-scan match at the victim slot was overwritten, and
    // min(vi, vi) still lands on the (now refilled) victim.
    return &entries_[match < vi ? match : vi];
}

void
FullyAssocTlb::invalidate(Vaddr va)
{
    Vpn vpn = vm::vpnOf(va);
    for (size_t i = 0; i < entries_.size(); ++i) {
        TlbEntry &e = entries_[i];
        if (e.matches(vpn)) {
            e.valid = false;
            syncSlot(i);
            ++stats_.invalidations;
        }
    }
}

void
FullyAssocTlb::flush()
{
    for (size_t i = 0; i < entries_.size(); ++i) {
        entries_[i].valid = false;
        syncSlot(i);
    }
    ++stats_.invalidations;
}

unsigned
FullyAssocTlb::occupancy() const
{
    unsigned n = 0;
    for (const auto &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace tps::tlb
