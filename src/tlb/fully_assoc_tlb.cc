#include "tlb/fully_assoc_tlb.hh"

#include "util/logging.hh"

namespace tps::tlb {

FullyAssocTlb::FullyAssocTlb(std::string name, unsigned entries)
    : name_(std::move(name))
{
    tps_assert(entries > 0);
    entries_.resize(entries);
}

TlbEntry *
FullyAssocTlb::lookup(Vaddr va)
{
    ++stats_.lookups;
    ++tick_;
    Vpn vpn = vm::vpnOf(va);
    for (auto &e : entries_) {
        if (e.matches(vpn)) {
            e.lastUse = tick_;
            ++stats_.hits;
            return &e;
        }
    }
    ++stats_.misses;
    return nullptr;
}

const TlbEntry *
FullyAssocTlb::probe(Vaddr va) const
{
    Vpn vpn = vm::vpnOf(va);
    for (const auto &e : entries_)
        if (e.matches(vpn))
            return &e;
    return nullptr;
}

bool
FullyAssocTlb::fill(const TlbEntry &entry)
{
    tps_assert(entry.valid);
    ++tick_;

    // Refill over a duplicate (same page) if present.
    for (auto &e : entries_) {
        if (e.valid && e.vpnTag == entry.vpnTag &&
            e.pageBits == entry.pageBits) {
            e = entry;
            e.lastUse = tick_;
            return false;
        }
    }

    TlbEntry *victim = &entries_[0];
    for (auto &e : entries_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    bool evicted = victim->valid;
    if (evicted)
        ++stats_.evictions;
    *victim = entry;
    victim->lastUse = tick_;
    ++stats_.fills;
    return evicted;
}

void
FullyAssocTlb::invalidate(Vaddr va)
{
    Vpn vpn = vm::vpnOf(va);
    for (auto &e : entries_) {
        if (e.matches(vpn)) {
            e.valid = false;
            ++stats_.invalidations;
        }
    }
}

void
FullyAssocTlb::flush()
{
    for (auto &e : entries_)
        e.valid = false;
    ++stats_.invalidations;
}

unsigned
FullyAssocTlb::occupancy() const
{
    unsigned n = 0;
    for (const auto &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace tps::tlb
