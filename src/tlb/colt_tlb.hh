/**
 * @file
 * CoLT-style coalesced TLB (Pham et al., MICRO 2012) -- the paper's
 * second baseline.
 *
 * CoLT exploits the buddy allocator's natural tendency to hand out
 * clusters of contiguous frames: one TLB entry maps a run of up to
 * kClusterPages contiguous base pages whose frames are also contiguous.
 * The set-associative variant (CoLT-SA) indexes by the aligned cluster
 * number so all pages of one cluster share a set; each entry records the
 * run's start/length within its cluster.  Coalescing is detected at fill
 * time by probing neighbouring PTEs (done by the MMU, which has page-table
 * access; see sim/mmu.cc).
 */

#ifndef TPS_TLB_COLT_TLB_HH
#define TPS_TLB_COLT_TLB_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "tlb/tlb_entry.hh"
#include "util/logging.hh"

namespace tps::tlb {

/** One coalesced entry mapping a contiguous base-page run. */
struct ColtEntry
{
    bool valid = false;
    Vpn startVpn = 0;    //!< first base page of the run
    unsigned length = 0; //!< pages in the run (1..kClusterPages)
    Pfn startPfn = 0;    //!< frame of startVpn; run is frame-contiguous
    bool writable = false;
    bool user = false;
    uint64_t lastUse = 0;

    bool
    covers(Vpn vpn) const
    {
        return valid && vpn >= startVpn && vpn < startVpn + length;
    }
};

/** A set-associative coalesced TLB. */
class ColtTlb
{
  public:
    /** Maximum pages coalesced into one entry (the cluster size). */
    static constexpr unsigned kClusterPages = 8;

    /**
     * @param entries  Total entries.
     * @param ways     Associativity.
     */
    ColtTlb(unsigned entries, unsigned ways);

    /** Look up @p va; stats + LRU updated. */
    ColtEntry *
    lookup(Vaddr va)
    {
        ++stats_.lookups;
        ++tick_;
        Vpn vpn = vm::vpnOf(va);
        unsigned set = setIndex(vpn);
        ColtEntry *base = &entries_[set * ways_];
        for (unsigned w = 0; w < ways_; ++w) {
            ColtEntry &e = base[w];
            if (e.covers(vpn)) {
                e.lastUse = tick_;
                ++stats_.hits;
                return &e;
            }
        }
        ++stats_.misses;
        return nullptr;
    }

    /** Probe without disturbing state. */
    const ColtEntry *probe(Vaddr va) const;

    /** Install a coalesced run (must stay within one aligned cluster). */
    void fill(const ColtEntry &entry);

    /** Invalidate entries containing @p va. */
    void invalidate(Vaddr va);

    /** Invalidate everything. */
    void flush();

    /** Translate @p va through @p entry (must cover it). */
    static Paddr
    translate(Vaddr va, const ColtEntry &entry)
    {
        Vpn vpn = vm::vpnOf(va);
        tps_assert(entry.covers(vpn));
        Pfn pfn = entry.startPfn + (vpn - entry.startVpn);
        return (pfn << vm::kBasePageBits) +
               vm::pageOffset(va, vm::kBasePageBits);
    }

    const TlbStats &stats() const { return stats_; }
    void clearStats() { stats_ = TlbStats{}; }
    unsigned sets() const { return sets_; }
    unsigned occupancy() const;

    /** Mean pages per valid entry (coalescing factor). */
    double coalescingFactor() const;

    /** Visit every valid run without disturbing state. */
    void
    forEachRun(const std::function<void(const ColtEntry &)> &visit) const
    {
        for (const ColtEntry &e : entries_)
            if (e.valid)
                visit(e);
    }

  private:
    unsigned
    setIndex(Vpn vpn) const
    {
        // Index by cluster number so a whole coalesced run lives in
        // one set.
        return static_cast<unsigned>((vpn / kClusterPages) &
                                     (sets_ - 1));
    }

    unsigned sets_;
    unsigned ways_;
    std::vector<ColtEntry> entries_;
    uint64_t tick_ = 0;
    TlbStats stats_;
};

} // namespace tps::tlb

#endif // TPS_TLB_COLT_TLB_HH
