/**
 * @file
 * Skewed-associative any-page-size TLB (Seznec, "Concurrent support of
 * multiple page sizes on a skewed associative TLB"; cited by the paper
 * as an alternative to the fully associative TPS TLB).
 *
 * Each way has its own index hash mixing the page-size-normalized VPN
 * and the page size, so entries of different sizes coexist without CAM
 * hardware.  A lookup probes one slot per (way, live page size) pair;
 * live-size counters keep the probe count proportional to the sizes
 * actually resident.  Replacement picks an invalid candidate slot if
 * one exists, else the least recently used among the candidates.
 */

#ifndef TPS_TLB_SKEWED_ASSOC_TLB_HH
#define TPS_TLB_SKEWED_ASSOC_TLB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tlb/any_size_tlb.hh"

namespace tps::tlb {

/** The skewed-associative TLB. */
class SkewedAssocTlb : public AnySizeTlb
{
  public:
    /**
     * @param name     Name for stat dumps.
     * @param entries  Total entries (sets-per-way x ways).
     * @param ways     Number of skewed ways.
     */
    SkewedAssocTlb(std::string name, unsigned entries, unsigned ways);

    TlbEntry *
    lookup(Vaddr va) override
    {
        ++stats_.lookups;
        ++tick_;
        Vpn vpn = vm::vpnOf(va);
        for (unsigned pb = vm::kBasePageBits; pb <= vm::kMaxPageBits;
             ++pb) {
            if (livePerSize_[pb] == 0)
                continue;
            for (unsigned w = 0; w < ways_; ++w) {
                TlbEntry &e = slot(w, indexOf(w, va, pb));
                if (e.valid && e.pageBits == pb && e.matches(vpn)) {
                    e.lastUse = tick_;
                    ++stats_.hits;
                    return &e;
                }
            }
        }
        ++stats_.misses;
        return nullptr;
    }

    const TlbEntry *probe(Vaddr va) const override;
    TlbEntry *findMutable(Vaddr va) override;
    TlbEntry *fill(const TlbEntry &entry) override;
    void invalidate(Vaddr va) override;
    void flush() override;

    const TlbStats &stats() const override { return stats_; }
    void clearStats() override { stats_ = TlbStats{}; }
    unsigned capacity() const override
    {
        return static_cast<unsigned>(entries_.size());
    }
    unsigned occupancy() const override;

    const std::string &name() const { return name_; }
    unsigned ways() const { return ways_; }

    void
    forEachEntry(const EntryVisitor &visit) const override
    {
        for (const TlbEntry &e : entries_)
            if (e.valid)
                visit(e);
    }

  private:
    /** Cheap strong mix (splitmix64 finalizer). */
    static constexpr uint64_t
    mix(uint64_t x)
    {
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    /** Way-specific index hash for a page of 2^@p page_bits at @p va. */
    unsigned
    indexOf(unsigned way, Vaddr va, unsigned page_bits) const
    {
        uint64_t key = (va >> page_bits) * (vm::kMaxPageBits + 1) +
                       page_bits;
        return static_cast<unsigned>(
            mix(key + way * 0x9e3779b97f4a7c15ull) & (sets_ - 1));
    }

    /** Slot reference for (way, index). */
    TlbEntry &slot(unsigned way, unsigned idx)
    {
        return entries_[way * sets_ + idx];
    }
    const TlbEntry &slot(unsigned way, unsigned idx) const
    {
        return entries_[way * sets_ + idx];
    }

    std::string name_;
    unsigned ways_;
    unsigned sets_;   //!< sets per way
    std::vector<TlbEntry> entries_;
    std::vector<uint64_t> livePerSize_;
    uint64_t tick_ = 0;
    TlbStats stats_;
};

} // namespace tps::tlb

#endif // TPS_TLB_SKEWED_ASSOC_TLB_HH
