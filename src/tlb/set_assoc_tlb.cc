#include "tlb/set_assoc_tlb.hh"

#include <algorithm>

#include "util/logging.hh"

namespace tps::tlb {

SetAssocTlb::SetAssocTlb(std::string name, unsigned entries, unsigned ways,
                         std::vector<unsigned> page_bits_list)
    : name_(std::move(name)), ways_(ways),
      pageBitsList_(std::move(page_bits_list)),
      livePerSize_(vm::kMaxPageBits + 1, 0)
{
    tps_assert(ways_ > 0 && entries > 0);
    tps_assert(entries % ways_ == 0);
    sets_ = entries / ways_;
    tps_assert(isPowerOfTwo(sets_));
    tps_assert(!pageBitsList_.empty());
    std::sort(pageBitsList_.begin(), pageBitsList_.end());
    entries_.resize(entries);
    keys_.assign(entries, kInvalidKey);
    lastUses_.assign(entries, 0);
    for (unsigned pb : pageBitsList_) {
        tps_assert(pb >= vm::kBasePageBits &&
                   pb - vm::kBasePageBits < 32);
        supportMask_ |= 1u << (pb - vm::kBasePageBits);
    }
}

bool
SetAssocTlb::supports(unsigned page_bits) const
{
    unsigned shift = page_bits - vm::kBasePageBits;
    return page_bits >= vm::kBasePageBits && shift < 32 &&
           ((supportMask_ >> shift) & 1u) != 0;
}

const TlbEntry *
SetAssocTlb::probe(Vaddr va) const
{
    Vpn vpn = vm::vpnOf(va);
    for (unsigned pb : pageBitsList_) {
        if (livePerSize_[pb] == 0)
            continue;
        unsigned set = setIndex(va, pb);
        const TlbEntry *base = &entries_[set * ways_];
        for (unsigned w = 0; w < ways_; ++w) {
            const TlbEntry &e = base[w];
            if (e.valid && e.pageBits == pb && e.matches(vpn))
                return &e;
        }
    }
    return nullptr;
}

TlbEntry *
SetAssocTlb::fill(const TlbEntry &entry)
{
    tps_assert(entry.valid);
    tps_assert(supports(entry.pageBits));
    ++tick_;
    unsigned set = setIndex(entry.pageBase(), entry.pageBits);
    size_t slot0 = static_cast<size_t>(set) * ways_;

    // One pass over the packed shadows finds a duplicate (refill in
    // place; its identity is exactly key equality) and the victim.
    // Invalid slots carry stamp 0, below every valid stamp, so the
    // first minimum over lastUses_ is the first invalid way when one
    // exists and the first least-recently-used way otherwise -- the
    // same choice the separate scans made.
    uint64_t needle = keyOf(entry.pageBits, entry.vpnTag);
    size_t vi = slot0;
    uint64_t best = lastUses_[slot0];
    for (unsigned w = 0; w < ways_; ++w) {
        size_t i = slot0 + w;
        if (keys_[i] == needle) {
            TlbEntry &e = entries_[i];
            e = entry;
            e.lastUse = tick_;
            syncKey(i);
            return &e;
        }
        bool older = lastUses_[i] < best;
        vi = older ? i : vi;
        best = older ? lastUses_[i] : best;
    }
    TlbEntry *victim = &entries_[vi];
    if (victim->valid) {
        if (--livePerSize_[victim->pageBits] == 0)
            liveMask_ &=
                ~(1u << (victim->pageBits - vm::kBasePageBits));
        ++stats_.evictions;
    }
    *victim = entry;
    victim->lastUse = tick_;
    syncKey(vi);
    ++livePerSize_[entry.pageBits];
    liveMask_ |= 1u << (entry.pageBits - vm::kBasePageBits);
    ++stats_.fills;
    return victim;
}

void
SetAssocTlb::invalidate(Vaddr va)
{
    Vpn vpn = vm::vpnOf(va);
    for (unsigned pb : pageBitsList_) {
        if (livePerSize_[pb] == 0)
            continue;
        TlbEntry *e = findInSet(setIndex(va, pb), vpn, pb);
        if (e) {
            e->valid = false;
            syncKey(static_cast<size_t>(e - entries_.data()));
            if (--livePerSize_[pb] == 0)
                liveMask_ &= ~(1u << (pb - vm::kBasePageBits));
            ++stats_.invalidations;
        }
    }
}

void
SetAssocTlb::flush()
{
    for (auto &e : entries_)
        e.valid = false;
    std::fill(keys_.begin(), keys_.end(), kInvalidKey);
    std::fill(lastUses_.begin(), lastUses_.end(), 0);
    std::fill(livePerSize_.begin(), livePerSize_.end(), 0);
    liveMask_ = 0;
    ++stats_.invalidations;
}

unsigned
SetAssocTlb::occupancy() const
{
    unsigned n = 0;
    for (const auto &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace tps::tlb
