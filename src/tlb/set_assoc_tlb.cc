#include "tlb/set_assoc_tlb.hh"

#include <algorithm>

#include "util/logging.hh"

namespace tps::tlb {

SetAssocTlb::SetAssocTlb(std::string name, unsigned entries, unsigned ways,
                         std::vector<unsigned> page_bits_list)
    : name_(std::move(name)), ways_(ways),
      pageBitsList_(std::move(page_bits_list)),
      livePerSize_(vm::kMaxPageBits + 1, 0)
{
    tps_assert(ways_ > 0 && entries > 0);
    tps_assert(entries % ways_ == 0);
    sets_ = entries / ways_;
    tps_assert(isPowerOfTwo(sets_));
    tps_assert(!pageBitsList_.empty());
    std::sort(pageBitsList_.begin(), pageBitsList_.end());
    entries_.resize(entries);
}

bool
SetAssocTlb::supports(unsigned page_bits) const
{
    return std::find(pageBitsList_.begin(), pageBitsList_.end(),
                     page_bits) != pageBitsList_.end();
}

unsigned
SetAssocTlb::setIndex(Vaddr va, unsigned page_bits) const
{
    return static_cast<unsigned>((va >> page_bits) & (sets_ - 1));
}

TlbEntry *
SetAssocTlb::findInSet(unsigned set, Vpn vpn, unsigned page_bits)
{
    TlbEntry *base = &entries_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        TlbEntry &e = base[w];
        if (e.valid && e.pageBits == page_bits && e.matches(vpn))
            return &e;
    }
    return nullptr;
}

TlbEntry *
SetAssocTlb::lookup(Vaddr va)
{
    ++stats_.lookups;
    ++tick_;
    Vpn vpn = vm::vpnOf(va);
    for (unsigned pb : pageBitsList_) {
        if (livePerSize_[pb] == 0)
            continue;
        TlbEntry *e = findInSet(setIndex(va, pb), vpn, pb);
        if (e) {
            e->lastUse = tick_;
            ++stats_.hits;
            return e;
        }
    }
    ++stats_.misses;
    return nullptr;
}

const TlbEntry *
SetAssocTlb::probe(Vaddr va) const
{
    Vpn vpn = vm::vpnOf(va);
    for (unsigned pb : pageBitsList_) {
        if (livePerSize_[pb] == 0)
            continue;
        unsigned set = setIndex(va, pb);
        const TlbEntry *base = &entries_[set * ways_];
        for (unsigned w = 0; w < ways_; ++w) {
            const TlbEntry &e = base[w];
            if (e.valid && e.pageBits == pb && e.matches(vpn))
                return &e;
        }
    }
    return nullptr;
}

bool
SetAssocTlb::fill(const TlbEntry &entry)
{
    tps_assert(entry.valid);
    tps_assert(supports(entry.pageBits));
    ++tick_;
    unsigned set = setIndex(entry.pageBase(), entry.pageBits);
    TlbEntry *base = &entries_[set * ways_];

    // Refill over a duplicate if present.
    for (unsigned w = 0; w < ways_; ++w) {
        TlbEntry &e = base[w];
        if (e.valid && e.pageBits == entry.pageBits &&
            e.vpnTag == entry.vpnTag) {
            e = entry;
            e.lastUse = tick_;
            return false;
        }
    }

    TlbEntry *victim = &base[0];
    for (unsigned w = 0; w < ways_; ++w) {
        TlbEntry &e = base[w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    bool evicted = victim->valid;
    if (evicted) {
        --livePerSize_[victim->pageBits];
        ++stats_.evictions;
    }
    *victim = entry;
    victim->lastUse = tick_;
    ++livePerSize_[entry.pageBits];
    ++stats_.fills;
    return evicted;
}

void
SetAssocTlb::invalidate(Vaddr va)
{
    Vpn vpn = vm::vpnOf(va);
    for (unsigned pb : pageBitsList_) {
        if (livePerSize_[pb] == 0)
            continue;
        TlbEntry *e = findInSet(setIndex(va, pb), vpn, pb);
        if (e) {
            e->valid = false;
            --livePerSize_[pb];
            ++stats_.invalidations;
        }
    }
}

void
SetAssocTlb::flush()
{
    for (auto &e : entries_)
        e.valid = false;
    std::fill(livePerSize_.begin(), livePerSize_.end(), 0);
    ++stats_.invalidations;
}

unsigned
SetAssocTlb::occupancy() const
{
    unsigned n = 0;
    for (const auto &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace tps::tlb
