/**
 * @file
 * Two-level TLB hierarchy composing the structures of Table I and the
 * paper's four designs:
 *
 *  - Baseline (Skylake-like): split L1 (64-entry 4-way 4 KB SA, 32-entry
 *    FA 2 MB, 4-entry FA 1 GB) + 1536-entry 12-way 4K/2M STLB + 16-entry
 *    FA 1 GB STLB.
 *  - TPS: the 2 MB and 1 GB L1s are *replaced* by one 32-entry fully
 *    associative any-page-size TPS TLB (Sec. III-A2); the 4 KB L1 stays.
 *  - RMM: baseline L1/L2 plus a 32-entry range TLB probed in parallel
 *    with the STLB on L1 misses.
 *  - CoLT: the 4 KB L1 becomes a coalesced TLB (up to 8 contiguous
 *    translations per entry); everything else is baseline.
 *
 * The hierarchy performs lookups and fills; page walks, CoLT coalescing
 * probes and RMM range-table fills are driven by the MMU (sim/mmu.hh),
 * which owns page-table access.
 */

#ifndef TPS_TLB_TLB_HIERARCHY_HH
#define TPS_TLB_TLB_HIERARCHY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tlb/colt_tlb.hh"
#include "tlb/fully_assoc_tlb.hh"
#include "tlb/skewed_assoc_tlb.hh"
#include "tlb/range_tlb.hh"
#include "tlb/set_assoc_tlb.hh"
#include "tlb/tlb_entry.hh"

namespace tps::obs {
class EventTrace;
class StatRegistry;
} // namespace tps::obs

namespace tps::tlb {

/** Which of the paper's designs the hierarchy implements. */
enum class TlbDesign
{
    Baseline,  //!< conventional split-size Skylake-like TLBs
    Tps,       //!< 4 KB SA L1 + any-size TPS L1 TLB
    Rmm,       //!< baseline + L2-level range TLB
    Colt,      //!< coalesced 4 KB L1
};

/** Geometry knobs (defaults follow Table I / Sec. III-A2). */
struct TlbHierarchyConfig
{
    TlbDesign design = TlbDesign::Baseline;
    unsigned l1SmallEntries = 64;
    unsigned l1SmallWays = 4;
    unsigned l1LargeEntries = 32;   //!< 2 MB FA L1 (baseline/RMM/CoLT)
    unsigned l1HugeEntries = 4;     //!< 1 GB FA L1 (baseline/RMM/CoLT)
    unsigned tpsTlbEntries = 32;    //!< any-size TPS L1 TLB
    bool tpsTlbSkewed = false;      //!< skewed-associative TPS TLB
                                    //!< instead of fully associative
    unsigned tpsTlbSkewWays = 4;
    unsigned stlbEntries = 1536;
    unsigned stlbWays = 12;
    unsigned stlbHugeEntries = 16;
    unsigned rangeTlbEntries = 32;
    unsigned coltWays = 4;
};

/** Where a lookup was satisfied. */
enum class TlbHitLevel
{
    L1,
    L2,
    Miss,
};

/** Result of a hierarchy lookup. */
struct TlbLookupResult
{
    TlbHitLevel level = TlbHitLevel::Miss;
    TlbEntry *entry = nullptr;  //!< L1-resident entry after a hit/fill
    bool fromRange = false;     //!< L2 hit supplied by the range TLB
    bool fromColt = false;      //!< L1 hit supplied by the coalesced TLB
    Paddr paddr = 0;            //!< translation (valid on hit)
};

/** Hierarchy-level counters (the paper's figure inputs). */
struct TlbHierarchyStats
{
    uint64_t accesses = 0;
    uint64_t l1Hits = 0;
    uint64_t l1Misses = 0;   //!< the paper's "L1 DTLB misses"
    uint64_t l2Hits = 0;     //!< STLB or range-TLB hits
    uint64_t rangeHits = 0;  //!< subset of l2Hits from the range TLB
    uint64_t misses = 0;     //!< full misses -> page walks
};

/** The composed hierarchy. */
class TlbHierarchy
{
  public:
    explicit TlbHierarchy(const TlbHierarchyConfig &cfg);

    /**
     * Look up @p va through L1 then L2 (and the range TLB for RMM).
     * On an L2 hit the translation is installed into the appropriate L1
     * structure and the returned entry points at that L1 copy.  On a
     * full miss the caller (MMU) must walk and call fill().
     */
    TlbLookupResult lookup(Vaddr va);

    /**
     * Compile-time-specialized lookup for the engine's fast path.
     *
     * The template parameters mirror which L1 structures the active
     * design instantiates, so the probe chain compiles down to direct
     * calls with the null checks and virtual dispatch of lookup()
     * removed.  The L2 tail (STLB / range TLB, rarely taken) is shared
     * with the reference path, so the two paths are identical by
     * construction everywhere except the devirtualized L1 probes.
     *
     * @tparam HasColt   design has the coalesced L1 (Colt)
     * @tparam HasSmall  design has the 4 KB set-associative L1
     * @tparam TpsKind   0 = no TPS L1, 1 = fully associative,
     *                   2 = skewed associative
     * @tparam HasLarge  design has the split 2 MB / 1 GB L1s
     */
    template <bool HasColt, bool HasSmall, int TpsKind, bool HasLarge>
    TlbLookupResult
    lookupFast(Vaddr va)
    {
        ++stats_.accesses;
        TlbLookupResult res;
        if constexpr (HasColt) {
            if (ColtEntry *ce = coltL1_->lookup(va)) {
                res.level = TlbHitLevel::L1;
                res.fromColt = true;
                res.paddr = ColtTlb::translate(va, *ce);
                ++stats_.l1Hits;
                return res;
            }
        }
        if constexpr (HasSmall) {
            if (TlbEntry *e = l1Small_->lookup(va)) {
                res.level = TlbHitLevel::L1;
                res.entry = e;
                res.paddr = e->translate(va);
                ++stats_.l1Hits;
                return res;
            }
        }
        if constexpr (TpsKind == 1) {
            auto *tps = static_cast<FullyAssocTlb *>(tpsL1_.get());
            if (TlbEntry *e = tps->lookup(va)) {
                res.level = TlbHitLevel::L1;
                res.entry = e;
                res.paddr = e->translate(va);
                ++stats_.l1Hits;
                return res;
            }
        } else if constexpr (TpsKind == 2) {
            auto *tps = static_cast<SkewedAssocTlb *>(tpsL1_.get());
            if (TlbEntry *e = tps->lookup(va)) {
                res.level = TlbHitLevel::L1;
                res.entry = e;
                res.paddr = e->translate(va);
                ++stats_.l1Hits;
                return res;
            }
        }
        if constexpr (HasLarge) {
            if (TlbEntry *e = l1Large_->lookup(va)) {
                res.level = TlbHitLevel::L1;
                res.entry = e;
                res.paddr = e->translate(va);
                ++stats_.l1Hits;
                return res;
            }
            if (TlbEntry *e = l1Huge_->lookup(va)) {
                res.level = TlbHitLevel::L1;
                res.entry = e;
                res.paddr = e->translate(va);
                ++stats_.l1Hits;
                return res;
            }
        }
        res.level = TlbHitLevel::Miss;
        ++stats_.l1Misses;
        return lookupL2Tail(va, res);
    }

    /**
     * Install a walked translation into L1 and the STLB.
     * @return pointer to the L1-resident copy.
     */
    TlbEntry *fill(Vaddr va, const TlbEntry &entry);

    /** Invalidate the page containing @p va everywhere (INVLPG). */
    void shootdown(Vaddr va);

    /** Flush every structure (full TLB flush / context switch). */
    void flushAll();

    const TlbHierarchyStats &stats() const { return stats_; }
    void clearStats();

    /** Register the hierarchy's live counters under @p prefix. */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix);

    /** Record shootdown/flush events into @p trace (nullptr = off). */
    void setEventTrace(obs::EventTrace *trace) { trace_ = trace; }

    TlbDesign design() const { return cfg_.design; }
    const TlbHierarchyConfig &config() const { return cfg_; }

    /** Accessors for design-specific structures (may be null). */
    RangeTlb *rangeTlb() { return rangeTlb_.get(); }
    ColtTlb *coltTlb() { return coltL1_.get(); }
    AnySizeTlb *tpsTlb() { return tpsL1_.get(); }
    SetAssocTlb *l1Small() { return l1Small_.get(); }
    SetAssocTlb *stlb() { return stlb_.get(); }
    FullyAssocTlb *l1Large() { return l1Large_.get(); }
    FullyAssocTlb *l1Huge() { return l1Huge_.get(); }
    FullyAssocTlb *stlbHuge() { return stlbHuge_.get(); }

    const RangeTlb *rangeTlb() const { return rangeTlb_.get(); }
    const ColtTlb *coltTlb() const { return coltL1_.get(); }

    /**
     * Visit every cached page-granular translation in every structure,
     * without disturbing replacement state or stats.  Coalesced (CoLT)
     * runs and RMM ranges have their own shapes; use forEachColtRun()
     * and forEachRange() for those.
     */
    void
    forEachEntry(const std::function<void(const TlbEntry &)> &visit) const
    {
        if (l1Small_)
            l1Small_->forEachEntry(visit);
        if (l1Large_)
            l1Large_->forEachEntry(visit);
        if (l1Huge_)
            l1Huge_->forEachEntry(visit);
        if (tpsL1_)
            tpsL1_->forEachEntry(visit);
        if (stlb_)
            stlb_->forEachEntry(visit);
        if (stlbHuge_)
            stlbHuge_->forEachEntry(visit);
    }

    /** Visit every valid CoLT run (no-op without a CoLT L1). */
    void
    forEachColtRun(
        const std::function<void(const ColtEntry &)> &visit) const
    {
        if (coltL1_)
            coltL1_->forEachRun(visit);
    }

    /** Visit every valid RMM range (no-op without a range TLB). */
    void
    forEachRange(
        const std::function<void(const RangeEntry &)> &visit) const
    {
        if (rangeTlb_)
            rangeTlb_->forEachRange(visit);
    }

  private:
    /** Probe only the L1 structures. */
    TlbLookupResult lookupL1(Vaddr va);

    /**
     * The L2 half of a lookup: STLB/range probe, L1 install, counter
     * updates.  @p res is the L1-miss result being completed.  Shared
     * by lookup() and lookupFast().
     */
    TlbLookupResult lookupL2Tail(Vaddr va, TlbLookupResult res);

    /** Route @p entry to the right L1 structure and return its copy. */
    TlbEntry *installL1(const TlbEntry &entry);

    TlbHierarchyConfig cfg_;
    std::unique_ptr<SetAssocTlb> l1Small_;
    std::unique_ptr<FullyAssocTlb> l1Large_;
    std::unique_ptr<FullyAssocTlb> l1Huge_;
    std::unique_ptr<AnySizeTlb> tpsL1_;
    std::unique_ptr<ColtTlb> coltL1_;
    std::unique_ptr<SetAssocTlb> stlb_;
    std::unique_ptr<FullyAssocTlb> stlbHuge_;
    std::unique_ptr<RangeTlb> rangeTlb_;
    TlbHierarchyStats stats_;
    obs::EventTrace *trace_ = nullptr;
};

} // namespace tps::tlb

#endif // TPS_TLB_TLB_HIERARCHY_HH
