/**
 * @file
 * Workload interface: a generator that performs mmap/munmap requests
 * through the simulated OS and emits the stream of memory accesses the
 * engine translates -- exactly the two event kinds the paper's PIN tool
 * traced from real benchmarks.
 */

#ifndef TPS_WORKLOADS_WORKLOAD_HH
#define TPS_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/access.hh"
#include "util/rng.hh"

namespace tps::workloads {

/** Static description of a workload. */
struct WorkloadInfo
{
    std::string name;
    std::string description;
    uint64_t footprintBytes = 0;   //!< approximate virtual footprint
    uint64_t defaultAccesses = 0;  //!< accesses emitted per run
    unsigned instsPerAccess = 3;   //!< non-memory instructions between
                                   //!< accesses (for MPKI / timing)
};

/** The generator interface. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Static metadata. */
    virtual const WorkloadInfo &info() const = 0;

    /** Perform the allocation phase (mmap calls) through @p api. */
    virtual void setup(sim::AllocApi &api) = 0;

    /**
     * Produce the next access.
     * @return false when the run is complete.
     */
    virtual bool next(sim::MemAccess &out) = 0;

    /**
     * Number of leading accesses that belong to the initialization
     * phase (the program writing its data structures before the
     * measured kernel).  The engine clears statistics after these so
     * figures report steady-state behaviour, as a full-run trace would.
     */
    virtual uint64_t warmupAccesses() const { return 0; }
};

/**
 * Convenience base holding the info block, a seeded RNG, and the
 * initialization-sweep machinery: setup() registers each arena with
 * registerInit(), and next() first drains one sequential write per
 * base page across all registered arenas (the program "initializing
 * its memory"), which demand-faults everything in and lets the paging
 * policy perform its promotions before measurement starts.
 */
class WorkloadBase : public Workload
{
  public:
    const WorkloadInfo &info() const override { return info_; }

    uint64_t
    warmupAccesses() const override
    {
        uint64_t pages = 0;
        for (const auto &[base, bytes] : initRegions_)
            pages += (bytes + 4095) / 4096;
        return pages;
    }

  protected:
    WorkloadBase(WorkloadInfo info, uint64_t seed)
        : info_(std::move(info)), rng_(seed, 0x9e3779b9)
    {}

    /** Declare [base, base+bytes) for the initialization sweep. */
    void
    registerInit(vm::Vaddr base, uint64_t bytes)
    {
        initRegions_.emplace_back(base, bytes);
    }

    /** Emit the next init access; false once the sweep is complete. */
    bool
    emitInit(sim::MemAccess &out)
    {
        while (initRegion_ < initRegions_.size()) {
            auto [base, bytes] = initRegions_[initRegion_];
            if (initOffset_ < bytes) {
                out.va = base + initOffset_;
                out.write = true;
                out.dependsOnPrev = false;
                initOffset_ += 4096;
                return true;
            }
            ++initRegion_;
            initOffset_ = 0;
        }
        return false;
    }

    WorkloadInfo info_;
    Pcg32 rng_;
    uint64_t emitted_ = 0;   //!< pattern accesses produced so far

  private:
    std::vector<std::pair<vm::Vaddr, uint64_t>> initRegions_;
    size_t initRegion_ = 0;
    uint64_t initOffset_ = 0;
};

} // namespace tps::workloads

#endif // TPS_WORKLOADS_WORKLOAD_HH
