/**
 * @file
 * Workload interface: a generator that performs mmap/munmap requests
 * through the simulated OS and emits the stream of memory accesses the
 * engine translates -- exactly the two event kinds the paper's PIN tool
 * traced from real benchmarks.
 */

#ifndef TPS_WORKLOADS_WORKLOAD_HH
#define TPS_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/access.hh"
#include "util/rng.hh"

namespace tps::workloads {

/** Static description of a workload. */
struct WorkloadInfo
{
    std::string name;
    std::string description;
    uint64_t footprintBytes = 0;   //!< approximate virtual footprint
    uint64_t defaultAccesses = 0;  //!< accesses emitted per run
    unsigned instsPerAccess = 3;   //!< non-memory instructions between
                                   //!< accesses (for MPKI / timing)
};

/** The generator interface. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Static metadata. */
    virtual const WorkloadInfo &info() const = 0;

    /** Perform the allocation phase (mmap calls) through @p api. */
    virtual void setup(sim::AllocApi &api) = 0;

    /**
     * Produce the next access.
     * @return false when the run is complete.
     */
    virtual bool next(sim::MemAccess &out) = 0;

    /**
     * Produce up to @p max accesses into @p out and return the count.
     * A short batch is not the end of the run: only a return of zero
     * means the generator is exhausted.  The default implementation
     * drains next(), so any workload is batch-drivable; generators
     * whose batching provably preserves the per-access interleaving
     * advertise it via batchable().
     */
    virtual size_t
    nextBatch(sim::MemAccess *out, size_t max)
    {
        size_t n = 0;
        while (n < max && next(out[n]))
            ++n;
        return n;
    }

    /**
     * True when nextBatch() emits the exact access/allocation
     * interleaving of repeated next() calls, making the generator
     * eligible for the engine's batched fast path.
     */
    virtual bool batchable() const { return false; }

    /**
     * Number of leading accesses that belong to the initialization
     * phase (the program writing its data structures before the
     * measured kernel).  The engine clears statistics after these so
     * figures report steady-state behaviour, as a full-run trace would.
     */
    virtual uint64_t warmupAccesses() const { return 0; }
};

/**
 * Convenience base holding the info block, a seeded RNG, and the
 * initialization-sweep machinery: setup() registers each arena with
 * registerInit(), and next() first drains one sequential write per
 * base page across all registered arenas (the program "initializing
 * its memory"), which demand-faults everything in and lets the paging
 * policy perform its promotions before measurement starts.
 */
class WorkloadBase : public Workload
{
  public:
    const WorkloadInfo &info() const override { return info_; }

    uint64_t
    warmupAccesses() const override
    {
        uint64_t pages = 0;
        for (const auto &[base, bytes] : initRegions_)
            pages += (bytes + 4095) / 4096;
        return pages;
    }

    /**
     * Generic pattern driver: drain the init sweep, then serve from the
     * pending buffer, refilling via refillPending() whenever it runs
     * dry.
     */
    bool
    next(sim::MemAccess &out) override
    {
        if (emitInit(out))
            return true;
        if (emitted_ >= info_.defaultAccesses)
            return false;
        while (pendingPos_ >= pending_.size()) {
            pending_.clear();
            pendingPos_ = 0;
            refillPending();
        }
        out = pending_[pendingPos_++];
        ++emitted_;
        return true;
    }

    /**
     * Batched driver, bit-identical to repeated next() calls: the
     * pending buffer is refilled only at batch starts, which is exactly
     * when the per-access path would refill (the buffer only empties
     * after its last access has been consumed), so generators that
     * allocate during refills (SpecLike's MixedAlloc mmap/munmap churn)
     * see the identical interleaving of allocation calls and translated
     * accesses either way.  A batch never mixes init-sweep and pattern
     * accesses, and a dry buffer ends the batch early.
     */
    size_t
    nextBatch(sim::MemAccess *out, size_t max) override
    {
        size_t n = 0;
        while (n < max && emitInit(out[n]))
            ++n;
        if (n > 0)
            return n;
        if (emitted_ >= info_.defaultAccesses)
            return 0;
        while (pendingPos_ >= pending_.size()) {
            pending_.clear();
            pendingPos_ = 0;
            refillPending();
        }
        while (n < max && emitted_ < info_.defaultAccesses &&
               pendingPos_ < pending_.size()) {
            out[n++] = pending_[pendingPos_++];
            ++emitted_;
        }
        return n;
    }

    /**
     * next() and nextBatch() are driven from the same refillPending()
     * stream above, so batching is always exact.  A subclass that
     * overrides next() directly must also override this back to false.
     */
    bool batchable() const override { return true; }

  protected:
    WorkloadBase(WorkloadInfo info, uint64_t seed)
        : info_(std::move(info)), rng_(seed, 0x9e3779b9)
    {}

    /** Declare [base, base+bytes) for the initialization sweep. */
    void
    registerInit(vm::Vaddr base, uint64_t bytes)
    {
        initRegions_.emplace_back(base, bytes);
    }

    /** Emit the next init access; false once the sweep is complete. */
    bool
    emitInit(sim::MemAccess &out)
    {
        while (initRegion_ < initRegions_.size()) {
            auto [base, bytes] = initRegions_[initRegion_];
            if (initOffset_ < bytes) {
                out.va = base + initOffset_;
                out.write = true;
                out.dependsOnPrev = false;
                initOffset_ += 4096;
                return true;
            }
            ++initRegion_;
            initOffset_ = 0;
        }
        return false;
    }

    /**
     * Append the next pattern burst (>= 1 access) to pending_.  Called
     * with the buffer already cleared; the RNG draws and any AllocApi
     * calls made here happen at the same stream positions whether the
     * workload is driven by next() or nextBatch().
     */
    virtual void refillPending() {}

    WorkloadInfo info_;
    Pcg32 rng_;
    uint64_t emitted_ = 0;   //!< pattern accesses produced so far
    std::vector<sim::MemAccess> pending_;  //!< current pattern burst
    size_t pendingPos_ = 0;  //!< consumption cursor into pending_

  private:
    std::vector<std::pair<vm::Vaddr, uint64_t>> initRegions_;
    size_t initRegion_ = 0;
    uint64_t initOffset_ = 0;
};

} // namespace tps::workloads

#endif // TPS_WORKLOADS_WORKLOAD_HH
