#include "workloads/xsbench.hh"

#include "util/bitops.hh"

namespace tps::workloads {

namespace {

/** Nuclides participating in one material lookup (XSBench averages). */
constexpr unsigned kNuclidesPerLookup = 34;

} // namespace

XsBench::XsBench(XsBenchConfig cfg)
    : WorkloadBase(
          WorkloadInfo{
              "xsbench",
              "Monte Carlo cross-section lookup kernel",
              // egrid + index grid + nuclide grid, see setup().
              cfg.isotopes * cfg.gridPoints * (8 + 8 + 48),
              // ~log2(points) search accesses + gathers per lookup
              cfg.lookups * (27 + 2 * kNuclidesPerLookup + 1),
              5,
          },
          cfg.seed),
      cfg_(cfg)
{
    unionizedPoints_ = cfg_.isotopes * cfg_.gridPoints;
}

void
XsBench::setup(sim::AllocApi &api)
{
    egridBase_ = api.mmap(unionizedPoints_ * 8);
    indexBase_ = api.mmap(unionizedPoints_ * 8);
    nuclideBase_ = api.mmap(cfg_.isotopes * cfg_.gridPoints * 48);
    resultBase_ = api.mmap(64 << 10);
    registerInit(egridBase_, unionizedPoints_ * 8);
    registerInit(indexBase_, unionizedPoints_ * 8);
    registerInit(nuclideBase_, cfg_.isotopes * cfg_.gridPoints * 48);
    registerInit(resultBase_, 64 << 10);
}

void
XsBench::refillPending()
{
    // Binary search over the sorted unionized grid: lg(n) dependent
    // probes converging on a random energy.
    uint64_t lo = 0;
    uint64_t hi = unionizedPoints_;
    uint64_t target = rng_.below64(unionizedPoints_);
    while (hi - lo > 1) {
        uint64_t mid = lo + (hi - lo) / 2;
        pending_.push_back({egridBase_ + mid * 8, false, true});
        if (mid <= target)
            lo = mid;
        else
            hi = mid;
    }

    // One index-grid read, then a gather per participating nuclide.
    pending_.push_back({indexBase_ + lo * 8, false, true});
    for (unsigned i = 0; i < kNuclidesPerLookup; ++i) {
        uint64_t iso = rng_.below64(cfg_.isotopes);
        // The grid point is correlated with the searched energy.
        uint64_t gp = (lo / cfg_.isotopes) % cfg_.gridPoints;
        vm::Vaddr row =
            nuclideBase_ + (iso * cfg_.gridPoints + gp) * 48;
        pending_.push_back({row, false, true});
        pending_.push_back({row + 40, false, false});
    }

    // Accumulate the macroscopic XS into the verification buffer.
    pending_.push_back(
        {resultBase_ + (lookupCount_++ % 8192) * 8, true, true});
}

} // namespace tps::workloads
