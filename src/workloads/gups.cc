#include "workloads/gups.hh"

namespace tps::workloads {

Gups::Gups(GupsConfig cfg)
    : WorkloadBase(
          WorkloadInfo{
              "gups",
              "random read-modify-write updates over one huge table",
              cfg.tableBytes,
              cfg.updates * 2,
              2,   // tight update loop: few filler instructions
          },
          cfg.seed),
      cfg_(cfg)
{
}

void
Gups::setup(sim::AllocApi &api)
{
    table_ = api.mmap(cfg_.tableBytes);
    registerInit(table_, cfg_.tableBytes);
}

bool
Gups::next(sim::MemAccess &out)
{
    if (emitInit(out))
        return true;
    if (havePending_) {
        // The write half of the read-modify-write.
        out.va = pendingWrite_;
        out.write = true;
        out.dependsOnPrev = true;   // XOR of the value just read
        havePending_ = false;
        ++emitted_;
        return true;
    }
    if (emitted_ >= info_.defaultAccesses)
        return false;
    uint64_t words = cfg_.tableBytes / 8;
    vm::Vaddr va = table_ + rng_.below64(words) * 8;
    out.va = va;
    out.write = false;
    out.dependsOnPrev = false;   // indices are generated, not loaded
    pendingWrite_ = va;
    havePending_ = true;
    ++emitted_;
    return true;
}

} // namespace tps::workloads
