#include "workloads/gups.hh"

namespace tps::workloads {

Gups::Gups(GupsConfig cfg)
    : WorkloadBase(
          WorkloadInfo{
              "gups",
              "random read-modify-write updates over one huge table",
              cfg.tableBytes,
              cfg.updates * 2,
              2,   // tight update loop: few filler instructions
          },
          cfg.seed),
      cfg_(cfg)
{
}

void
Gups::setup(sim::AllocApi &api)
{
    table_ = api.mmap(cfg_.tableBytes);
    registerInit(table_, cfg_.tableBytes);
}

void
Gups::refillPending()
{
    // One read-modify-write update: the index is generated, not loaded,
    // so the read is independent; the write-back of the XORed value
    // depends on it.  defaultAccesses is even, so runs always end at an
    // update boundary.
    uint64_t words = cfg_.tableBytes / 8;
    vm::Vaddr va = table_ + rng_.below64(words) * 8;
    pending_.push_back({va, false, false});
    pending_.push_back({va, true, true});
}

} // namespace tps::workloads
