/**
 * @file
 * SPEC CPU2017-like synthetic generators.
 *
 * SPEC17 is proprietary, so (per DESIGN.md's substitution table) each
 * TLB-relevant benchmark is replaced by a generator reproducing its
 * allocation footprint and access-locality *shape* -- the two properties
 * that determine TLB behaviour.  One parameterized engine implements
 * the archetypal patterns; named factory functions configure it per
 * benchmark.  The low-MPKI generators exist so the Fig. 8 profiling
 * sweep has both sides of the paper's MPKI > 5 selection cut.
 */

#ifndef TPS_WORKLOADS_SPEC_LIKE_HH
#define TPS_WORKLOADS_SPEC_LIKE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace tps::workloads {

/** Archetypal access shapes. */
enum class AccessPattern
{
    PointerChase,  //!< dependent random walk (mcf: network simplex)
    Stream,        //!< concurrent strided sequential streams
    Stencil,       //!< 3-D nearest-neighbour sweeps over many grid
                   //!< functions (cactuBSSN)
    TreeWalk,      //!< root-to-leaf descents of a wide tree (xalancbmk)
    ClusteredPool, //!< priority-queue sift + skewed reads over a
                   //!< sparsely-populated, run-clustered object pool
                   //!< (omnetpp) -- THP cannot promote the partially
                   //!< used 2 MB chunks, TPS tailors each run
    MixedAlloc,    //!< phase-allocating compiler-like churn (gcc)
    HotPool,       //!< skewed reuse in a small pool (low-MPKI fillers)
};

/** Full configuration of one synthetic generator. */
struct SpecLikeConfig
{
    std::string name;
    std::string description;
    AccessPattern pattern = AccessPattern::Stream;
    uint64_t footprintBytes = 64ull << 20;
    uint64_t accesses = 1200000;
    unsigned instsPerAccess = 3;
    uint64_t seed = 1;

    // Pattern-specific knobs.
    unsigned streams = 4;        //!< Stream: concurrent streams
    uint64_t strideBytes = 8;    //!< Stream: per-access stride
    unsigned nodeBytes = 128;    //!< TreeWalk node / pool element
    unsigned fanout = 4;         //!< TreeWalk arity
    double hotFraction = 0.05;   //!< HotPool: hot-set size fraction
    double hotProbability = 0.9; //!< HotPool: P(access hot set)
    uint64_t allocChunkMin = 64ull << 10;   //!< MixedAlloc region sizes
    uint64_t allocChunkMax = 4ull << 20;
    unsigned liveRegions = 96;   //!< MixedAlloc live-region target
    unsigned stencilArrays = 16; //!< Stencil: distinct grid functions
    uint64_t runMinBytes = 16ull << 10;  //!< ClusteredPool run sizes
    uint64_t runMaxBytes = 128ull << 10;
    double poolDensity = 0.25;   //!< ClusteredPool: touched fraction
    double poolZipfTheta = 0.8;  //!< ClusteredPool: run-reuse skew
};

/** The parameterized generator. */
class SpecLike : public WorkloadBase
{
  public:
    explicit SpecLike(SpecLikeConfig cfg);

    void setup(sim::AllocApi &api) override;

  private:
    /** Dispatch one burst of the configured pattern into pending_. */
    void refillPending() override;

    // Pattern workers, each appending to pending_.
    void emitPointerChase();
    void emitStream();
    void emitStencil();
    void emitTreeWalk();
    void emitClusteredPool();
    void emitMixedAlloc();
    void emitHotPool();

    SpecLikeConfig cfg_;
    sim::AllocApi *api_ = nullptr;

    vm::Vaddr base_ = 0;          //!< main arena (most patterns)
    uint64_t chaseState_ = 1;     //!< PointerChase LCG state
    std::vector<uint64_t> streamPos_;
    uint64_t stencilCell_ = 0;
    unsigned stencilArray_ = 0;
    uint64_t nx_ = 0, ny_ = 0, nz_ = 0;
    uint64_t heapElems_ = 0;
    std::vector<vm::Vaddr> regions_;      //!< MixedAlloc live regions
    std::vector<uint64_t> regionSizes_;
    std::vector<uint64_t> regionUsed_;    //!< bump-pointer watermarks
    size_t tailRegion_ = 0;               //!< obstack being compiled
    //! ClusteredPool: touched runs (base, bytes) and their sampler.
    std::vector<std::pair<vm::Vaddr, uint64_t>> runs_;
    std::unique_ptr<ZipfSampler> runZipf_;
};

/** @name Named benchmark factories (TLB-intensive set, Fig. 8 cut) */
///@{
SpecLikeConfig mcfLike(uint64_t seed = 101);
SpecLikeConfig omnetppLike(uint64_t seed = 102);
SpecLikeConfig xalancbmkLike(uint64_t seed = 103);
SpecLikeConfig gccLike(uint64_t seed = 104);
SpecLikeConfig cactuLike(uint64_t seed = 105);
SpecLikeConfig fotonik3dLike(uint64_t seed = 106);
SpecLikeConfig romsLike(uint64_t seed = 107);
///@}

/** @name Low-MPKI fillers (below the paper's selection cut) */
///@{
SpecLikeConfig povrayLike(uint64_t seed = 108);
SpecLikeConfig leelaLike(uint64_t seed = 109);
SpecLikeConfig nabLike(uint64_t seed = 110);
///@}

} // namespace tps::workloads

#endif // TPS_WORKLOADS_SPEC_LIKE_HH
