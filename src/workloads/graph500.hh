/**
 * @file
 * Graph500-style workload: breadth-first search over a synthetic
 * Kronecker (R-MAT) graph in CSR form.  The generator builds the graph
 * (host side) at setup, lays the CSR arrays out in the simulated
 * address space (8-byte elements, as in the Graph500 reference), and
 * emits the BFS access stream: sequential adjacency scans interleaved
 * with data-dependent visits to random vertices.
 *
 * Because graph construction is expensive and every figure runs the
 * benchmark under several designs, the host-side CSR is memoized per
 * (scale, edgeFactor, seed) and shared between instances; the BFS
 * itself remains per-instance and deterministic.
 */

#ifndef TPS_WORKLOADS_GRAPH500_HH
#define TPS_WORKLOADS_GRAPH500_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "workloads/workload.hh"

namespace tps::workloads {

/** Graph500 configuration. */
struct Graph500Config
{
    unsigned scale = 23;        //!< 2^scale vertices
    unsigned edgeFactor = 8;    //!< edges per vertex
    uint64_t accesses = 1500000;
    /**
     * Traversal accesses treated as warmup before measurement: BFS's
     * early levels ride the R-MAT hub vertices (high locality); the
     * representative, TLB-hostile phase is the peak frontier, where
     * visited-checks scatter across the whole vertex range.
     */
    uint64_t warmupTraversal = 6000000;
    uint64_t seed = 7;
};

/** The BFS generator. */
class Graph500 : public WorkloadBase
{
  public:
    /** Host-side compressed sparse row graph. */
    struct Csr
    {
        std::vector<uint64_t> xadj;
        std::vector<uint32_t> adj;
    };

    explicit Graph500(Graph500Config cfg = Graph500Config{});

    void setup(sim::AllocApi &api) override;

    uint64_t
    warmupAccesses() const override
    {
        return WorkloadBase::warmupAccesses() + cfg_.warmupTraversal;
    }

    /** Vertex count (tests). */
    uint64_t vertices() const { return n_; }
    /** Directed edge count (tests). */
    uint64_t
    edges() const
    {
        return csr_ ? csr_->xadj.back() : 0;
    }

  private:
    /** Build (or fetch the memoized) R-MAT CSR. */
    void buildGraph();

    /** Start a new BFS from a random root. */
    void startBfs();

    /** Advance the BFS one vertex; pushes accesses to pending_. */
    bool step();

    void refillPending() override { step(); }

    Graph500Config cfg_;
    uint64_t n_ = 0;

    std::shared_ptr<const Csr> csr_;
    std::vector<bool> visited_;
    std::vector<uint32_t> frontier_;
    std::vector<uint32_t> nextFrontier_;
    size_t frontierPos_ = 0;

    // Simulated layout (8-byte elements throughout).
    vm::Vaddr xadjBase_ = 0;
    vm::Vaddr adjBase_ = 0;
    vm::Vaddr visitedBase_ = 0;
};

} // namespace tps::workloads

#endif // TPS_WORKLOADS_GRAPH500_HH
