#include "workloads/spec_like.hh"

#include <cmath>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace tps::workloads {

SpecLike::SpecLike(SpecLikeConfig cfg)
    : WorkloadBase(
          WorkloadInfo{
              cfg.name,
              cfg.description,
              cfg.footprintBytes,
              cfg.accesses,
              cfg.instsPerAccess,
          },
          cfg.seed),
      cfg_(std::move(cfg))
{
}

void
SpecLike::setup(sim::AllocApi &api)
{
    api_ = &api;
    switch (cfg_.pattern) {
      case AccessPattern::Stencil: {
        // `stencilArrays` grid functions of equal size; each a
        // near-cubic grid of doubles with 2 MB (512x512 doubles)
        // planes so the sweep front spans many large pages.
        uint64_t per_array = cfg_.footprintBytes / cfg_.stencilArrays;
        uint64_t cells = per_array / 8;
        // Prefer 2 MB (512x512-double) planes; shrink the plane for
        // scaled-down runs so the grid keeps at least 8 planes.
        nx_ = 512;
        while (nx_ > 16 && cells / (nx_ * nx_) < 8)
            nx_ /= 2;
        ny_ = nx_;
        nz_ = cells / (nx_ * ny_);
        tps_assert(nz_ >= 8);
        base_ = api.mmap(cfg_.footprintBytes);
        registerInit(base_, cfg_.footprintBytes);
        stencilCell_ = rng_.below64(nx_ * ny_ * nz_);
        break;
      }
      case AccessPattern::ClusteredPool: {
        // A dense event heap plus a large, sparsely populated message
        // pool: live objects sit in dense runs separated by untouched
        // gaps, so only ~poolDensity of the pool is ever faulted in.
        heapElems_ = (cfg_.footprintBytes / 8) / cfg_.nodeBytes;
        base_ = api.mmap(cfg_.footprintBytes);
        uint64_t heap_bytes = heapElems_ * cfg_.nodeBytes;
        registerInit(base_, heap_bytes);

        vm::Vaddr pool = base_ + cfg_.footprintBytes / 8;
        vm::Vaddr pool_end = base_ + cfg_.footprintBytes;
        vm::Vaddr pos = pool;
        double gap_scale = (1.0 - cfg_.poolDensity) / cfg_.poolDensity;
        while (pos < pool_end) {
            // Slabs are power-of-two sized and naturally aligned (as a
            // slab allocator would place them), so each run is exactly
            // one tailored page under TPS.
            unsigned min_bits = log2Ceil(cfg_.runMinBytes);
            unsigned max_bits = log2Ceil(cfg_.runMaxBytes);
            unsigned bits =
                min_bits + rng_.below(max_bits - min_bits + 1);
            uint64_t run = 1ull << bits;
            pos = alignUp(pos, run);
            if (pos + run > pool_end)
                break;
            runs_.emplace_back(pos, run);
            registerInit(pos, run);
            uint64_t gap = alignUp(
                static_cast<uint64_t>(
                    gap_scale * static_cast<double>(run) *
                    (0.5 + rng_.uniform())),
                4096);
            pos += run + gap;
        }
        runZipf_ = std::make_unique<ZipfSampler>(runs_.size(),
                                                 cfg_.poolZipfTheta);
        break;
      }
      case AccessPattern::MixedAlloc: {
        // Region 0 is the long-lived main arena (symbol tables, type
        // and IR caches -- most read traffic lands here); the rest are
        // per-function obstack regions churned in emitMixedAlloc().
        uint64_t arena = cfg_.footprintBytes / 2;
        regions_.push_back(api.mmap(arena));
        regionSizes_.push_back(arena);
        regionUsed_.push_back(arena);
        registerInit(regions_[0], arena);
        break;
      }
      case AccessPattern::Stream: {
        base_ = api.mmap(cfg_.footprintBytes);
        registerInit(base_, cfg_.footprintBytes);
        // Positions are lane-relative; stagger them by seed so SMT
        // competitor instances sweep different parts of their lanes.
        streamPos_.assign(cfg_.streams, 0);
        uint64_t lane = cfg_.footprintBytes / cfg_.streams;
        for (unsigned s = 0; s < cfg_.streams; ++s)
            streamPos_[s] = alignDown(rng_.below64(lane - 8), 8);
        break;
      }
      default:
        base_ = api.mmap(cfg_.footprintBytes);
        registerInit(base_, cfg_.footprintBytes);
        break;
    }
    if (cfg_.pattern == AccessPattern::PointerChase) {
        uint64_t slots = cfg_.footprintBytes / 64;
        chaseState_ = rng_.next64() & (slots - 1);
    }
}

void
SpecLike::emitPointerChase()
{
    // Full-period LCG over cache-line-granularity slots: a dependent
    // random walk touching the whole arena, like mcf's arc traversal.
    uint64_t slots = cfg_.footprintBytes / 64;
    tps_assert(isPowerOfTwo(slots));
    for (int i = 0; i < 16; ++i) {
        chaseState_ = (chaseState_ * 2862933555777941757ull + 3037000493ull)
                      & (slots - 1);
        pending_.push_back({base_ + chaseState_ * 64, false, true});
        // Occasional sequential neighbour touch (arc data).
        if ((chaseState_ & 7) == 0)
            pending_.push_back({base_ + chaseState_ * 64 + 8,
                                true, false});
    }
}

void
SpecLike::emitStream()
{
    uint64_t lane = cfg_.footprintBytes / cfg_.streams;
    for (unsigned s = 0; s < cfg_.streams; ++s) {
        uint64_t lane_base = s * lane;
        uint64_t pos = streamPos_[s];
        pending_.push_back({base_ + lane_base + pos, s % 3 == 1, false});
        pos += cfg_.strideBytes;
        if (pos + 8 > lane) {
            // End of the column sweep: advance to the next column
            // (column-major traversal of a lane-wide matrix).
            pos = (pos % cfg_.strideBytes) + 8;
        }
        streamPos_[s] = pos;
    }
}

void
SpecLike::emitStencil()
{
    // One BSSN-like point update per batch: a 7-point stencil on the
    // primary grid function plus centre reads of the coupled grid
    // functions (cactuBSSN touches ~20 fields per point), so the sweep
    // front keeps several large pages live per array simultaneously.
    uint64_t per_array = cfg_.footprintBytes / cfg_.stencilArrays;
    uint64_t cells = nx_ * ny_ * nz_;
    uint64_t c = stencilCell_;
    stencilCell_ = (stencilCell_ + 1) % cells;
    vm::Vaddr in = base_ + stencilArray_ * per_array;
    auto at = [&](uint64_t cell) { return in + cell * 8; };
    uint64_t plane = nx_ * ny_;
    pending_.push_back({at(c), false, false});
    pending_.push_back({at((c + 1) % cells), false, false});
    pending_.push_back({at((c + cells - 1) % cells), false, false});
    pending_.push_back({at((c + nx_) % cells), false, false});
    pending_.push_back({at((c + cells - nx_) % cells), false, false});
    pending_.push_back({at((c + plane) % cells), false, false});
    pending_.push_back({at((c + cells - plane) % cells), false, false});
    // Coupled-field reads: every other grid function at c +- plane or
    // c +- 2 planes, so the sweep front keeps ~2 large pages per field
    // live simultaneously.
    for (unsigned a = 1; a < cfg_.stencilArrays; ++a) {
        vm::Vaddr field =
            base_ + ((stencilArray_ + a) % cfg_.stencilArrays) *
                        per_array;
        uint64_t cell;
        switch (a & 3) {
          case 0:
            cell = (c + plane) % cells;
            break;
          case 1:
            cell = (c + cells - plane) % cells;
            break;
          case 2:
            cell = (c + 2 * plane) % cells;
            break;
          default:
            cell = (c + cells - 2 * plane) % cells;
            break;
        }
        pending_.push_back({field + cell * 8, false, false});
    }
    // Result write into the next grid function.
    vm::Vaddr out = base_ +
                    ((stencilArray_ + 1) % cfg_.stencilArrays) *
                        per_array;
    pending_.push_back({out + c * 8, true, true});
}

void
SpecLike::emitTreeWalk()
{
    // Root-to-leaf descent of a complete fanout-ary tree.
    uint64_t nodes = cfg_.footprintBytes / cfg_.nodeBytes;
    uint64_t node = 0;
    while (true) {
        pending_.push_back({base_ + node * cfg_.nodeBytes, false, true});
        uint64_t child =
            node * cfg_.fanout + 1 + rng_.below(cfg_.fanout);
        if (child >= nodes)
            break;
        node = child;
    }
    // Leaf payload write (attribute update).
    pending_.push_back(
        {base_ + node * cfg_.nodeBytes + 16, true, true});
}

void
SpecLike::emitClusteredPool()
{
    // Pop-min + push: a sift-down path through the dense event heap,
    // then message-object reads in a zipf-hot clustered run.
    uint64_t node = 1;
    while (node < heapElems_) {
        pending_.push_back(
            {base_ + node * cfg_.nodeBytes, false, true});
        node = node * 2 + rng_.below(2);
    }
    uint64_t run_idx = runZipf_->sample(rng_);
    auto [run_base, run_bytes] = runs_[run_idx];
    uint64_t objs = run_bytes / cfg_.nodeBytes;
    uint64_t obj = rng_.below64(objs);
    vm::Vaddr msg = run_base + obj * cfg_.nodeBytes;
    pending_.push_back({msg, false, true});
    pending_.push_back({msg + 24, true, false});
}

void
SpecLike::emitMixedAlloc()
{
    // Compiler-like phases: obstack/arena regions are allocated, then
    // filled by a bump pointer (dense growing prefix -- exactly what
    // lets TPS promote incrementally), read back with recency-skewed
    // reuse, and retired when the live set exceeds the target.
    if (regions_.size() < cfg_.liveRegions || rng_.chance(0.02)) {
        uint64_t span = cfg_.allocChunkMax - cfg_.allocChunkMin;
        uint64_t size = cfg_.allocChunkMin +
                        alignDown(rng_.below64(span + 1), 4096);
        if (size < cfg_.allocChunkMin)
            size = cfg_.allocChunkMin;
        vm::Vaddr r = api_->mmap(size);
        regions_.push_back(r);
        regionSizes_.push_back(size);
        regionUsed_.push_back(0);
        if (regions_.size() > cfg_.liveRegions) {
            api_->munmap(regions_.front());
            regions_.erase(regions_.begin());
            regionSizes_.erase(regionSizes_.begin());
            regionUsed_.erase(regionUsed_.begin());
        }
    }

    // Bump-allocate into the newest region: sequential writes extend
    // its used prefix.
    {
        size_t newest = regions_.size() - 1;
        uint64_t grow = 2048 + rng_.below64(14 << 10);
        uint64_t used = regionUsed_[newest];
        uint64_t limit = regionSizes_[newest];
        for (uint64_t off = used;
             off < used + grow && off < limit; off += 512)
            pending_.push_back({regions_[newest] + off, true, false});
        regionUsed_[newest] =
            used + grow < limit ? used + grow : limit;
    }

    // Reads: mostly the main arena (the compiler consulting its
    // long-lived tables), the rest recency-skewed over the obstacks.
    // Reads dominate writes heavily, as in a real compilation.
    for (int i = 0; i < 64; ++i) {
        size_t idx;
        if (rng_.chance(0.7)) {
            idx = 0;
        } else if (rng_.chance(0.8) && tailRegion_ < regions_.size()) {
            // Function-at-a-time: obstack reads strongly reuse the
            // region currently being compiled.
            idx = tailRegion_;
        } else {
            size_t n = regions_.size();
            idx = n - 1 -
                  static_cast<size_t>(
                      std::pow(rng_.uniform(), 6.0) *
                      static_cast<double>(n - 1));
            tailRegion_ = idx;
        }
        if (regionUsed_[idx] < 8)
            continue;
        uint64_t off = alignDown(rng_.below64(regionUsed_[idx]), 8);
        pending_.push_back({regions_[idx] + off, false, i % 4 == 0});
    }
}

void
SpecLike::emitHotPool()
{
    uint64_t hot_bytes = static_cast<uint64_t>(
        cfg_.hotFraction * static_cast<double>(cfg_.footprintBytes));
    if (hot_bytes < 4096)
        hot_bytes = 4096;
    for (int i = 0; i < 16; ++i) {
        bool hot = rng_.chance(cfg_.hotProbability);
        uint64_t span = hot ? hot_bytes : cfg_.footprintBytes;
        uint64_t off = alignDown(rng_.below64(span), 8);
        pending_.push_back({base_ + off, i % 5 == 0, false});
    }
}

void
SpecLike::refillPending()
{
    switch (cfg_.pattern) {
      case AccessPattern::PointerChase:
        emitPointerChase();
        break;
      case AccessPattern::Stream:
        emitStream();
        break;
      case AccessPattern::Stencil:
        emitStencil();
        break;
      case AccessPattern::TreeWalk:
        emitTreeWalk();
        break;
      case AccessPattern::ClusteredPool:
        emitClusteredPool();
        break;
      case AccessPattern::MixedAlloc:
        emitMixedAlloc();
        break;
      case AccessPattern::HotPool:
        emitHotPool();
        break;
    }
}

namespace {

SpecLikeConfig
makeConfig(const char *name, const char *desc, AccessPattern pattern,
           uint64_t footprint, uint64_t accesses, unsigned ipa,
           uint64_t seed)
{
    SpecLikeConfig cfg;
    cfg.name = name;
    cfg.description = desc;
    cfg.pattern = pattern;
    cfg.footprintBytes = footprint;
    cfg.accesses = accesses;
    cfg.instsPerAccess = ipa;
    cfg.seed = seed;
    return cfg;
}

} // namespace

SpecLikeConfig
mcfLike(uint64_t seed)
{
    return makeConfig("mcf", "network-simplex pointer chasing",
                      AccessPattern::PointerChase, 4ull << 30,
                      1500000, 3, seed);
}

SpecLikeConfig
omnetppLike(uint64_t seed)
{
    auto cfg = makeConfig("omnetpp",
                          "event-queue sift + clustered message pool",
                          AccessPattern::ClusteredPool, 768ull << 20,
                          1500000, 4, seed);
    cfg.nodeBytes = 64;
    cfg.poolDensity = 0.25;
    // Event queues are strongly skewed toward the short-lived hot
    // messages at the head: most pool traffic hits a few dozen slabs.
    cfg.poolZipfTheta = 1.2;
    cfg.runMinBytes = 128ull << 10;
    cfg.runMaxBytes = 512ull << 10;
    return cfg;
}

SpecLikeConfig
xalancbmkLike(uint64_t seed)
{
    auto cfg = makeConfig("xalancbmk", "DOM-tree descents",
                          AccessPattern::TreeWalk, 512ull << 20,
                          1500000, 4, seed);
    cfg.nodeBytes = 128;
    cfg.fanout = 4;
    return cfg;
}

SpecLikeConfig
gccLike(uint64_t seed)
{
    auto cfg = makeConfig("gcc", "phase-allocating compiler churn",
                          AccessPattern::MixedAlloc, 640ull << 20,
                          1500000, 4, seed);
    cfg.liveRegions = 160;
    return cfg;
}

SpecLikeConfig
cactuLike(uint64_t seed)
{
    auto cfg = makeConfig("cactuBSSN",
                          "7-point stencil over many grid functions",
                          AccessPattern::Stencil, 2ull << 30, 1600000,
                          5, seed);
    cfg.stencilArrays = 32;
    return cfg;
}

SpecLikeConfig
fotonik3dLike(uint64_t seed)
{
    auto cfg = makeConfig("fotonik3d", "many strided field sweeps",
                          AccessPattern::Stream, 4ull << 30, 1500000,
                          5, seed);
    cfg.streams = 12;
    cfg.strideBytes = (1ull << 20) + 520;
    return cfg;
}

SpecLikeConfig
romsLike(uint64_t seed)
{
    auto cfg = makeConfig("roms", "column-major ocean-grid sweeps",
                          AccessPattern::Stream, 4ull << 30, 1500000,
                          5, seed);
    cfg.streams = 8;
    cfg.strideBytes = (2ull << 20) + 4104;
    return cfg;
}

SpecLikeConfig
povrayLike(uint64_t seed)
{
    auto cfg = makeConfig("povray", "small hot scene-graph pool",
                          AccessPattern::HotPool, 12ull << 20, 900000,
                          6, seed);
    cfg.hotFraction = 0.05;
    cfg.hotProbability = 0.97;
    return cfg;
}

SpecLikeConfig
leelaLike(uint64_t seed)
{
    auto cfg = makeConfig("leela", "MCTS node pool with strong reuse",
                          AccessPattern::HotPool, 24ull << 20, 900000,
                          6, seed);
    cfg.hotFraction = 0.1;
    cfg.hotProbability = 0.9;
    return cfg;
}

SpecLikeConfig
nabLike(uint64_t seed)
{
    auto cfg = makeConfig("nab", "sequential molecular-array sweeps",
                          AccessPattern::Stream, 64ull << 20, 900000, 6,
                          seed);
    cfg.streams = 2;
    cfg.strideBytes = 8;
    return cfg;
}

} // namespace tps::workloads
