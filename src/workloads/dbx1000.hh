/**
 * @file
 * DBx1000-style workload: a YCSB-like main-memory OLTP key-value
 * kernel.  Zipf-distributed keys probe a hash index (bucket array +
 * short chains), then read or update the tuple -- the paper's database
 * representative: pointer-dependent probes over a multi-hundred-MB
 * footprint with skewed reuse.
 */

#ifndef TPS_WORKLOADS_DBX1000_HH
#define TPS_WORKLOADS_DBX1000_HH

#include <memory>
#include <vector>

#include "workloads/workload.hh"

namespace tps::workloads {

/** DBx1000 configuration. */
struct Dbx1000Config
{
    uint64_t rows = 1ull << 24;   //!< tuples
    unsigned tupleBytes = 192;
    double zipfTheta = 0.6;       //!< YCSB default skew
    double writeFraction = 0.5;
    uint64_t txns = 150000;       //!< transactions (4 ops each)
    uint64_t seed = 23;
};

/** The OLTP generator. */
class Dbx1000 : public WorkloadBase
{
  public:
    explicit Dbx1000(Dbx1000Config cfg = Dbx1000Config{});

    void setup(sim::AllocApi &api) override;

  private:
    /** One transaction: kOpsPerTxn index probes + tuple accesses. */
    void refillPending() override;

    Dbx1000Config cfg_;
    ZipfSampler zipf_;
    uint64_t buckets_ = 0;

    vm::Vaddr indexBase_ = 0;  //!< bucket heads (8 B each)
    vm::Vaddr nodeBase_ = 0;   //!< chain nodes (32 B each)
    vm::Vaddr tupleBase_ = 0;  //!< row storage
};

} // namespace tps::workloads

#endif // TPS_WORKLOADS_DBX1000_HH
