/**
 * @file
 * GUPS (Giga-Updates Per Second / HPCC RandomAccess) workload: random
 * read-modify-write updates over one huge table.  The canonical
 * TLB-hostile pattern -- no spatial locality at all -- where only page
 * sizes large enough to cover the table help (the paper's running
 * example for why CoLT's small coalescing factor cannot help and why
 * TPS under heavy fragmentation loses its benefit).
 */

#ifndef TPS_WORKLOADS_GUPS_HH
#define TPS_WORKLOADS_GUPS_HH

#include "workloads/workload.hh"

namespace tps::workloads {

/** GUPS configuration. */
struct GupsConfig
{
    uint64_t tableBytes = 4ull << 30;
    uint64_t updates = 750000;   //!< each update = 1 read + 1 write
    uint64_t seed = 42;
};

/** The GUPS generator. */
class Gups : public WorkloadBase
{
  public:
    explicit Gups(GupsConfig cfg = GupsConfig{});

    void setup(sim::AllocApi &api) override;

  private:
    void refillPending() override;

    GupsConfig cfg_;
    vm::Vaddr table_ = 0;
};

} // namespace tps::workloads

#endif // TPS_WORKLOADS_GUPS_HH
