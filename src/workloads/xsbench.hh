/**
 * @file
 * XSBench-style workload: the Monte Carlo neutron-transport macroscopic
 * cross-section lookup kernel.  Each lookup binary-searches the
 * unionized energy grid (dependent accesses), then gathers one
 * cross-section row per nuclide of a randomly chosen material from the
 * huge nuclide grid -- large footprint with modest locality, matching
 * the paper's observation that XSBench retains TPS benefit even under
 * fragmentation (unlike GUPS).
 */

#ifndef TPS_WORKLOADS_XSBENCH_HH
#define TPS_WORKLOADS_XSBENCH_HH

#include <vector>

#include "workloads/workload.hh"

namespace tps::workloads {

/** XSBench configuration (shapes follow the reference "small" input). */
struct XsBenchConfig
{
    uint64_t isotopes = 355;
    uint64_t gridPoints = 150000;  //!< per isotope (the "large" input)
    uint64_t lookups = 25000;
    uint64_t seed = 11;
};

/** The lookup-kernel generator. */
class XsBench : public WorkloadBase
{
  public:
    explicit XsBench(XsBenchConfig cfg = XsBenchConfig{});

    void setup(sim::AllocApi &api) override;

  private:
    /** One full lookup: binary search + per-nuclide gathers. */
    void refillPending() override;

    XsBenchConfig cfg_;
    uint64_t unionizedPoints_ = 0;

    vm::Vaddr egridBase_ = 0;    //!< unionized energy grid (doubles)
    vm::Vaddr indexBase_ = 0;    //!< index grid (int per isotope/point)
    vm::Vaddr nuclideBase_ = 0;  //!< nuclide grid (6 doubles per point)
    vm::Vaddr resultBase_ = 0;   //!< verification accumulator buffer
    uint64_t lookupCount_ = 0;
};

} // namespace tps::workloads

#endif // TPS_WORKLOADS_XSBENCH_HH
