#include "workloads/graph500.hh"

#include <algorithm>
#include <map>
#include <mutex>
#include <tuple>

#include "util/logging.hh"

namespace tps::workloads {

namespace {

/** Memoized host-side graphs, keyed by (scale, edgeFactor, seed). */
std::map<std::tuple<unsigned, unsigned, uint64_t>,
         std::shared_ptr<const Graph500::Csr>> graph_cache;
std::mutex graph_cache_mutex;

/** One deterministic R-MAT edge (Graph500 reference quadrants). */
std::pair<uint32_t, uint32_t>
rmatEdge(Pcg32 &gen, unsigned scale)
{
    constexpr double a = 0.57, b = 0.19, c = 0.19;
    uint64_t src = 0, dst = 0;
    for (unsigned bit = 0; bit < scale; ++bit) {
        double u = gen.uniform();
        unsigned sbit, dbit;
        if (u < a) {
            sbit = 0; dbit = 0;
        } else if (u < a + b) {
            sbit = 0; dbit = 1;
        } else if (u < a + b + c) {
            sbit = 1; dbit = 0;
        } else {
            sbit = 1; dbit = 1;
        }
        src = (src << 1) | sbit;
        dst = (dst << 1) | dbit;
    }
    return {static_cast<uint32_t>(src), static_cast<uint32_t>(dst)};
}

std::shared_ptr<const Graph500::Csr>
buildCsr(unsigned scale, unsigned edge_factor, uint64_t seed)
{
    uint64_t n = 1ull << scale;
    uint64_t m = n * edge_factor;

    // Two passes over the same deterministic edge stream avoid
    // materializing the edge list: pass 1 counts degrees, pass 2
    // scatters into the CSR (each undirected edge appears both ways).
    auto csr = std::make_shared<Graph500::Csr>();
    {
        Pcg32 gen(seed, 0x6006);
        std::vector<uint32_t> degree(n, 0);
        for (uint64_t e = 0; e < m; ++e) {
            auto [s, d] = rmatEdge(gen, scale);
            ++degree[s];
            ++degree[d];
        }
        csr->xadj.assign(n + 1, 0);
        for (uint64_t v = 0; v < n; ++v)
            csr->xadj[v + 1] = csr->xadj[v] + degree[v];
    }
    csr->adj.resize(csr->xadj.back());
    {
        Pcg32 gen(seed, 0x6006);
        std::vector<uint64_t> cursor(csr->xadj.begin(),
                                     csr->xadj.end() - 1);
        for (uint64_t e = 0; e < m; ++e) {
            auto [s, d] = rmatEdge(gen, scale);
            csr->adj[cursor[s]++] = d;
            csr->adj[cursor[d]++] = s;
        }
    }
    return csr;
}

} // namespace

Graph500::Graph500(Graph500Config cfg)
    : WorkloadBase(
          WorkloadInfo{
              "graph500",
              "BFS over a Kronecker (R-MAT) graph in CSR form",
              // 8-byte adjacency + xadj + pred arrays.
              ((1ull << cfg.scale) * cfg.edgeFactor * 2) * 8 +
                  (1ull << cfg.scale) * 16,
              cfg.accesses + cfg.warmupTraversal,
              4,
          },
          cfg.seed),
      cfg_(cfg)
{
}

void
Graph500::buildGraph()
{
    n_ = 1ull << cfg_.scale;
    auto key = std::make_tuple(cfg_.scale, cfg_.edgeFactor, cfg_.seed);
    std::lock_guard<std::mutex> lock(graph_cache_mutex);
    auto it = graph_cache.find(key);
    if (it == graph_cache.end()) {
        it = graph_cache
                 .emplace(key, buildCsr(cfg_.scale, cfg_.edgeFactor,
                                        cfg_.seed))
                 .first;
    }
    csr_ = it->second;
    visited_.assign(n_, false);
}

void
Graph500::setup(sim::AllocApi &api)
{
    buildGraph();
    xadjBase_ = api.mmap((n_ + 1) * 8);
    adjBase_ = api.mmap(csr_->adj.size() * 8);
    visitedBase_ = api.mmap(n_ * 8);
    registerInit(xadjBase_, (n_ + 1) * 8);
    registerInit(adjBase_, csr_->adj.size() * 8);
    registerInit(visitedBase_, n_ * 8);
    startBfs();
}

void
Graph500::startBfs()
{
    std::fill(visited_.begin(), visited_.end(), false);
    uint32_t root = static_cast<uint32_t>(rng_.below64(n_));
    visited_[root] = true;
    frontier_.assign(1, root);
    nextFrontier_.clear();
    frontierPos_ = 0;
}

bool
Graph500::step()
{
    if (frontierPos_ >= frontier_.size()) {
        if (nextFrontier_.empty()) {
            startBfs();
            return true;
        }
        frontier_.swap(nextFrontier_);
        nextFrontier_.clear();
        frontierPos_ = 0;
    }
    uint32_t u = frontier_[frontierPos_++];

    // Read xadj[u]: the offsets bounding u's adjacency.
    pending_.push_back({xadjBase_ + u * 8ull, false, true});
    uint64_t begin = csr_->xadj[u];
    uint64_t end = csr_->xadj[u + 1];
    for (uint64_t off = begin; off < end; ++off) {
        uint32_t v = csr_->adj[off];
        // Sequential scan of the adjacency list...
        pending_.push_back({adjBase_ + off * 8ull, false, false});
        // ...then the data-dependent visit check (random vertex).
        pending_.push_back({visitedBase_ + v * 8ull, false, true});
        if (!visited_[v]) {
            visited_[v] = true;
            nextFrontier_.push_back(v);
            pending_.push_back({visitedBase_ + v * 8ull, true, true});
        }
    }
    return true;
}

} // namespace tps::workloads
