#include "workloads/dbx1000.hh"

namespace tps::workloads {

namespace {

constexpr unsigned kOpsPerTxn = 4;
constexpr unsigned kAccessesPerOp = 4;  // bucket + node + 2 tuple words

/** Cheap integer hash (splitmix-style) for key -> bucket placement. */
constexpr uint64_t
hashKey(uint64_t k)
{
    k += 0x9e3779b97f4a7c15ull;
    k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ull;
    k = (k ^ (k >> 27)) * 0x94d049bb133111ebull;
    return k ^ (k >> 31);
}

} // namespace

Dbx1000::Dbx1000(Dbx1000Config cfg)
    : WorkloadBase(
          WorkloadInfo{
              "dbx1000",
              "YCSB-like main-memory OLTP kernel over a hash index",
              cfg.rows * (cfg.tupleBytes + 32) + (cfg.rows / 2) * 8,
              cfg.txns * kOpsPerTxn * kAccessesPerOp,
              6,
          },
          cfg.seed),
      cfg_(cfg), zipf_(cfg.rows, cfg.zipfTheta)
{
    buckets_ = cfg_.rows / 2;
}

void
Dbx1000::setup(sim::AllocApi &api)
{
    indexBase_ = api.mmap(buckets_ * 8);
    nodeBase_ = api.mmap(cfg_.rows * 32);
    tupleBase_ = api.mmap(cfg_.rows * cfg_.tupleBytes);
    registerInit(indexBase_, buckets_ * 8);
    registerInit(nodeBase_, cfg_.rows * 32);
    registerInit(tupleBase_, cfg_.rows * cfg_.tupleBytes);
}

void
Dbx1000::refillPending()
{
    for (unsigned op = 0; op < kOpsPerTxn; ++op) {
        uint64_t key = zipf_.sample(rng_);
        bool write = rng_.chance(cfg_.writeFraction);
        uint64_t bucket = hashKey(key) % buckets_;

        // Bucket head read, then the dependent chain-node read.
        pending_.push_back({indexBase_ + bucket * 8, false, false});
        pending_.push_back({nodeBase_ + key * 32, false, true});
        // Tuple access: header word plus a payload word.
        vm::Vaddr row = tupleBase_ + key * cfg_.tupleBytes;
        pending_.push_back({row, false, true});
        pending_.push_back(
            {row + 8 * (1 + (key % ((cfg_.tupleBytes / 8) - 1))), write,
             false});
    }
}

} // namespace tps::workloads
