#include "workloads/registry.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/sim_error.hh"
#include "workloads/dbx1000.hh"
#include "workloads/graph500.hh"
#include "workloads/gups.hh"
#include "workloads/spec_like.hh"
#include "workloads/xsbench.hh"

namespace tps::workloads {

namespace {

uint64_t
scaled(uint64_t v, double scale)
{
    auto s = static_cast<uint64_t>(static_cast<double>(v) * scale);
    return s == 0 ? 1 : s;
}

std::unique_ptr<Workload>
makeSpecLike(SpecLikeConfig cfg, double scale, uint64_t seed_offset)
{
    cfg.footprintBytes = scaled(cfg.footprintBytes, scale) & ~4095ull;
    if (cfg.footprintBytes < (1ull << 20))
        cfg.footprintBytes = 1ull << 20;
    // PointerChase requires a power-of-two arena for its LCG period.
    if (cfg.pattern == AccessPattern::PointerChase)
        cfg.footprintBytes = 1ull << log2Floor(cfg.footprintBytes);
    cfg.accesses = scaled(cfg.accesses, scale);
    cfg.seed += seed_offset;
    return std::make_unique<SpecLike>(std::move(cfg));
}

} // namespace

std::unique_ptr<Workload>
makeWorkload(const std::string &name, double scale, uint64_t seed_offset)
{
    if (name == "gups") {
        GupsConfig cfg;
        cfg.tableBytes = scaled(cfg.tableBytes, scale) & ~4095ull;
        cfg.updates = scaled(cfg.updates, scale);
        cfg.seed += seed_offset;
        return std::make_unique<Gups>(cfg);
    }
    if (name == "graph500") {
        Graph500Config cfg;
        if (scale < 1.0) {
            int drop = static_cast<int>(
                std::round(-std::log2(scale)));
            cfg.scale = cfg.scale > static_cast<unsigned>(drop) + 10
                            ? cfg.scale - static_cast<unsigned>(drop)
                            : 10;
        } else if (scale > 1.0) {
            cfg.scale += static_cast<unsigned>(
                std::round(std::log2(scale)));
        }
        cfg.accesses = scaled(cfg.accesses, scale);
        cfg.warmupTraversal = scaled(cfg.warmupTraversal, scale);
        cfg.seed += seed_offset;
        return std::make_unique<Graph500>(cfg);
    }
    if (name == "xsbench") {
        XsBenchConfig cfg;
        cfg.gridPoints = scaled(cfg.gridPoints, scale);
        cfg.lookups = scaled(cfg.lookups, scale);
        cfg.seed += seed_offset;
        return std::make_unique<XsBench>(cfg);
    }
    if (name == "dbx1000") {
        Dbx1000Config cfg;
        cfg.rows = 1ull << log2Floor(scaled(cfg.rows, scale));
        cfg.txns = scaled(cfg.txns, scale);
        cfg.seed += seed_offset;
        return std::make_unique<Dbx1000>(cfg);
    }
    if (name == "mcf")
        return makeSpecLike(mcfLike(), scale, seed_offset);
    if (name == "omnetpp")
        return makeSpecLike(omnetppLike(), scale, seed_offset);
    if (name == "xalancbmk")
        return makeSpecLike(xalancbmkLike(), scale, seed_offset);
    if (name == "gcc")
        return makeSpecLike(gccLike(), scale, seed_offset);
    if (name == "cactuBSSN")
        return makeSpecLike(cactuLike(), scale, seed_offset);
    if (name == "fotonik3d")
        return makeSpecLike(fotonik3dLike(), scale, seed_offset);
    if (name == "roms")
        return makeSpecLike(romsLike(), scale, seed_offset);
    if (name == "povray")
        return makeSpecLike(povrayLike(), scale, seed_offset);
    if (name == "leela")
        return makeSpecLike(leelaLike(), scale, seed_offset);
    if (name == "nab")
        return makeSpecLike(nabLike(), scale, seed_offset);
    throwSimError(ErrorKind::InvalidArgument, "unknown workload '%s'",
                  name.c_str());
}

const std::vector<std::string> &
evaluationSuite()
{
    static const std::vector<std::string> suite = {
        "mcf",       "omnetpp", "xalancbmk", "gcc",
        "cactuBSSN", "fotonik3d", "roms",
        "gups",      "graph500", "xsbench",  "dbx1000",
    };
    return suite;
}

const std::vector<std::string> &
profilingSuite()
{
    static const std::vector<std::string> suite = [] {
        std::vector<std::string> s = evaluationSuite();
        s.push_back("povray");
        s.push_back("leela");
        s.push_back("nab");
        return s;
    }();
    return suite;
}

} // namespace tps::workloads
