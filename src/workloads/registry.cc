#include "workloads/registry.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/sim_error.hh"
#include "workloads/dbx1000.hh"
#include "workloads/graph500.hh"
#include "workloads/gups.hh"
#include "workloads/spec_like.hh"
#include "workloads/xsbench.hh"

namespace tps::workloads {

namespace {

uint64_t
scaled(uint64_t v, double scale)
{
    auto s = static_cast<uint64_t>(static_cast<double>(v) * scale);
    return s == 0 ? 1 : s;
}

std::unique_ptr<Workload>
makeSpecLike(SpecLikeConfig cfg, double scale, uint64_t seed_offset,
             uint64_t footprint_bytes)
{
    cfg.footprintBytes = scaled(cfg.footprintBytes, scale) & ~4095ull;
    if (footprint_bytes != 0)
        cfg.footprintBytes = footprint_bytes & ~4095ull;
    if (cfg.footprintBytes < (1ull << 20))
        cfg.footprintBytes = 1ull << 20;
    // PointerChase requires a power-of-two arena for its LCG period.
    if (cfg.pattern == AccessPattern::PointerChase)
        cfg.footprintBytes = 1ull << log2Floor(cfg.footprintBytes);
    cfg.accesses = scaled(cfg.accesses, scale);
    cfg.seed += seed_offset;
    return std::make_unique<SpecLike>(std::move(cfg));
}

} // namespace

std::unique_ptr<Workload>
makeWorkload(const std::string &name, double scale, uint64_t seed_offset,
             uint64_t footprint_bytes)
{
    if (name == "gups") {
        GupsConfig cfg;
        cfg.tableBytes = scaled(cfg.tableBytes, scale) & ~4095ull;
        if (footprint_bytes != 0) {
            cfg.tableBytes = footprint_bytes & ~4095ull;
            if (cfg.tableBytes < (1ull << 20))
                cfg.tableBytes = 1ull << 20;
        }
        cfg.updates = scaled(cfg.updates, scale);
        cfg.seed += seed_offset;
        return std::make_unique<Gups>(cfg);
    }
    if (name == "graph500") {
        Graph500Config cfg;
        if (footprint_bytes != 0) {
            // Simulated bytes per vertex: 8 (xadj) + 16*edgeFactor
            // (adjacency, each undirected edge stored both ways) + 8
            // (visited flags).  Vertex ids are uint32, capping scale
            // at 31.
            uint64_t per_vertex = 16 + 16ull * cfg.edgeFactor;
            uint64_t n = footprint_bytes / per_vertex;
            unsigned s = n > 1 ? static_cast<unsigned>(log2Floor(n)) : 1;
            cfg.scale = s < 10 ? 10 : (s > 31 ? 31 : s);
            // The host-side CSR costs (8 + 8*edgeFactor) bytes per
            // vertex -- about half the simulated footprint.  Flag
            // overrides that would dwarf typical host memory.
            uint64_t host =
                (8 + 8ull * cfg.edgeFactor) * (1ull << cfg.scale);
            if (host > (32ull << 30))
                tps_warn("graph500 footprint override needs ~%llu GB "
                         "of host memory for the CSR; consider gups "
                         "for terabyte-footprint cells",
                         static_cast<unsigned long long>(host >> 30));
        } else if (scale < 1.0) {
            int drop = static_cast<int>(
                std::round(-std::log2(scale)));
            cfg.scale = cfg.scale > static_cast<unsigned>(drop) + 10
                            ? cfg.scale - static_cast<unsigned>(drop)
                            : 10;
        } else if (scale > 1.0) {
            cfg.scale += static_cast<unsigned>(
                std::round(std::log2(scale)));
        }
        cfg.accesses = scaled(cfg.accesses, scale);
        cfg.warmupTraversal = scaled(cfg.warmupTraversal, scale);
        cfg.seed += seed_offset;
        return std::make_unique<Graph500>(cfg);
    }
    if (name == "xsbench") {
        XsBenchConfig cfg;
        cfg.gridPoints = scaled(cfg.gridPoints, scale);
        if (footprint_bytes != 0) {
            // Per grid point: isotopes * (8 egrid + 8 index + 48
            // nuclide) simulated bytes.
            uint64_t per_point = cfg.isotopes * 64;
            cfg.gridPoints = footprint_bytes / per_point;
            if (cfg.gridPoints < 1024)
                cfg.gridPoints = 1024;
        }
        cfg.lookups = scaled(cfg.lookups, scale);
        cfg.seed += seed_offset;
        return std::make_unique<XsBench>(cfg);
    }
    if (name == "dbx1000") {
        Dbx1000Config cfg;
        cfg.rows = 1ull << log2Floor(scaled(cfg.rows, scale));
        if (footprint_bytes != 0) {
            // Per row: tuple + 32 B chain node + half a bucket head.
            uint64_t per_row = cfg.tupleBytes + 32 + 4;
            uint64_t rows = footprint_bytes / per_row;
            cfg.rows = 1ull << log2Floor(rows < 1024 ? 1024 : rows);
        }
        cfg.txns = scaled(cfg.txns, scale);
        cfg.seed += seed_offset;
        return std::make_unique<Dbx1000>(cfg);
    }
    if (name == "mcf")
        return makeSpecLike(mcfLike(), scale, seed_offset, footprint_bytes);
    if (name == "omnetpp")
        return makeSpecLike(omnetppLike(), scale, seed_offset, footprint_bytes);
    if (name == "xalancbmk")
        return makeSpecLike(xalancbmkLike(), scale, seed_offset, footprint_bytes);
    if (name == "gcc")
        return makeSpecLike(gccLike(), scale, seed_offset, footprint_bytes);
    if (name == "cactuBSSN")
        return makeSpecLike(cactuLike(), scale, seed_offset, footprint_bytes);
    if (name == "fotonik3d")
        return makeSpecLike(fotonik3dLike(), scale, seed_offset, footprint_bytes);
    if (name == "roms")
        return makeSpecLike(romsLike(), scale, seed_offset, footprint_bytes);
    if (name == "povray")
        return makeSpecLike(povrayLike(), scale, seed_offset, footprint_bytes);
    if (name == "leela")
        return makeSpecLike(leelaLike(), scale, seed_offset, footprint_bytes);
    if (name == "nab")
        return makeSpecLike(nabLike(), scale, seed_offset, footprint_bytes);
    throwSimError(ErrorKind::InvalidArgument, "unknown workload '%s'",
                  name.c_str());
}

const std::vector<std::string> &
evaluationSuite()
{
    static const std::vector<std::string> suite = {
        "mcf",       "omnetpp", "xalancbmk", "gcc",
        "cactuBSSN", "fotonik3d", "roms",
        "gups",      "graph500", "xsbench",  "dbx1000",
    };
    return suite;
}

const std::vector<std::string> &
profilingSuite()
{
    static const std::vector<std::string> suite = [] {
        std::vector<std::string> s = evaluationSuite();
        s.push_back("povray");
        s.push_back("leela");
        s.push_back("nab");
        return s;
    }();
    return suite;
}

} // namespace tps::workloads
