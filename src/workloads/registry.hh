/**
 * @file
 * Workload registry: construct any benchmark by name with an optional
 * footprint/length scale, and the named suites the figures iterate.
 */

#ifndef TPS_WORKLOADS_REGISTRY_HH
#define TPS_WORKLOADS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace tps::workloads {

/**
 * Construct the workload named @p name.
 *
 * @param name         One of the suite names below.
 * @param scale        Multiplier on footprint and access count (1.0 =
 *                     defaults; smaller = faster runs for tests).
 * @param seed_offset  Added to the generator seed (use a nonzero value
 *                     for SMT competitor instances so streams differ).
 * @param footprint_bytes
 *                     When nonzero, override the workload's simulated
 *                     footprint to approximately this many bytes
 *                     (replacing the scale-derived size: gups table
 *                     bytes, graph500 CSR arrays, dbx1000 buffer pool,
 *                     xsbench grids, spec-like arenas).  Access counts
 *                     still follow @p scale.  Sizes snap to each
 *                     workload's granularity (power-of-two rows,
 *                     whole grid points, ...), so the realized
 *                     footprint can differ slightly.
 * @return the workload; fatal error on an unknown name.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       double scale = 1.0,
                                       uint64_t seed_offset = 0,
                                       uint64_t footprint_bytes = 0);

/** The paper's evaluated suite (TLB-intensive SPEC-like + big data). */
const std::vector<std::string> &evaluationSuite();

/** The Fig. 8 profiling sweep: evaluation suite + low-MPKI fillers. */
const std::vector<std::string> &profilingSuite();

} // namespace tps::workloads

#endif // TPS_WORKLOADS_REGISTRY_HH
