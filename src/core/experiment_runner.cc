#include "core/experiment_runner.hh"

namespace tps::core {

std::vector<sim::SimStats>
ExperimentRunner::run(const std::vector<RunOptions> &cells)
{
    return map(
        cells,
        [](const RunOptions &opts) { return runExperiment(opts); },
        [](const RunOptions &opts, size_t) {
            return opts.workload + "/" + designName(opts.design);
        });
}

} // namespace tps::core
