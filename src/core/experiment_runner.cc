#include "core/experiment_runner.hh"

#include <chrono>

#include "util/sim_error.hh"

namespace tps::core {

std::vector<sim::SimStats>
ExperimentRunner::run(const std::vector<RunOptions> &cells)
{
    return map(
        cells,
        [](const RunOptions &opts) { return runExperiment(opts); },
        [](const RunOptions &opts, size_t) {
            return opts.workload + "/" + designName(opts.design);
        });
}

std::vector<CellOutcome>
ExperimentRunner::runGuarded(const std::vector<RunOptions> &cells,
                             const SweepPolicy &policy)
{
    unsigned retries = policy.retries;
    return map(
        cells,
        [retries](const RunOptions &opts) {
            CellOutcome out;
            auto start = std::chrono::steady_clock::now();
            for (unsigned attempt = 0; attempt <= retries; ++attempt) {
                out.attempts = attempt + 1;
                try {
                    out.stats = runExperiment(opts);
                    out.status = CellStatus::Ok;
                    out.error.clear();
                    out.errorKind.clear();
                    break;
                } catch (const SimError &e) {
                    out.stats = sim::SimStats{};
                    out.status = e.kind() == ErrorKind::Timeout
                                     ? CellStatus::Timeout
                                     : CellStatus::Failed;
                    out.error = e.what();
                    out.errorKind = errorKindName(e.kind());
                } catch (const std::exception &e) {
                    out.stats = sim::SimStats{};
                    out.status = CellStatus::Failed;
                    out.error = e.what();
                    out.errorKind = "exception";
                }
            }
            out.seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            return out;
        },
        [](const RunOptions &opts, size_t) {
            return opts.workload + "/" + designName(opts.design);
        });
}

} // namespace tps::core
