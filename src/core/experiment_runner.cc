#include "core/experiment_runner.hh"

#include <chrono>

#include "util/sim_error.hh"

namespace tps::core {

std::vector<sim::SimStats>
ExperimentRunner::run(const std::vector<RunOptions> &cells)
{
    return map(
        cells,
        [](const RunOptions &opts) { return runExperiment(opts); },
        [](const RunOptions &opts, size_t) {
            return cellLabel(opts);
        });
}

std::vector<CellOutcome>
ExperimentRunner::runGuarded(const std::vector<RunOptions> &cells,
                             const SweepPolicy &policy)
{
    obs::SweepMonitor *monitor = monitor_;
    return map(
        cells,
        [policy, monitor](const RunOptions &opts) {
            CellOutcome out;
            if (policy.eventTrace)
                out.trace = std::make_unique<obs::EventTrace>();
            if (policy.profile)
                out.profile = std::make_unique<obs::ProfileRegistry>();
            RunHooks hooks{out.trace.get(), out.profile.get()};
            auto start = std::chrono::steady_clock::now();
            for (unsigned attempt = 0; attempt <= policy.retries;
                 ++attempt) {
                out.attempts = attempt + 1;
                // A retry re-records from scratch; on final failure the
                // partial trace is kept for post-mortem inspection.
                if (out.trace)
                    out.trace->clear();
                try {
                    out.stats = runExperiment(opts, hooks);
                    out.status = CellStatus::Ok;
                    out.error.clear();
                    out.errorKind.clear();
                    break;
                } catch (const SimError &e) {
                    out.stats = sim::SimStats{};
                    out.status = e.kind() == ErrorKind::Timeout
                                     ? CellStatus::Timeout
                                     : CellStatus::Failed;
                    out.error = e.what();
                    out.errorKind = errorKindName(e.kind());
                } catch (const std::exception &e) {
                    out.stats = sim::SimStats{};
                    out.status = CellStatus::Failed;
                    out.error = e.what();
                    out.errorKind = "exception";
                }
            }
            out.seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            // Still inside the map() span: stamp its trace-event args
            // so retried, failed and slow cells stand out in the
            // timeline.
            if (monitor)
                monitor->annotate(out.attempts, out.errorKind,
                                  out.seconds * 1e3);
            return out;
        },
        [](const RunOptions &opts, size_t) {
            return cellLabel(opts);
        });
}

} // namespace tps::core
