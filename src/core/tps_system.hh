/**
 * @file
 * Public facade: one object that assembles physical memory, a paging
 * policy, the TLB/walker hardware and the simulation engine for any of
 * the paper's designs -- plus the experiment runner used by the figure
 * benches and examples.
 */

#ifndef TPS_CORE_TPS_SYSTEM_HH
#define TPS_CORE_TPS_SYSTEM_HH

#include <memory>
#include <optional>
#include <string>

#include "os/fragmenter.hh"
#include "os/phys_memory.hh"
#include "os/policy_common.hh"
#include "sim/engine.hh"
#include "workloads/registry.hh"

namespace tps::obs {
class EventTrace;
class MemTelemetry;
class ProfileRegistry;
} // namespace tps::obs

namespace tps::core {

/** The designs every figure compares. */
enum class Design
{
    Base4k,    //!< 4 KB demand paging (THP disabled)
    Thp,       //!< reservation-based THP (the paper's baseline)
    Tps,       //!< Tailored Page Sizes
    TpsEager,  //!< TPS with eager paging
    Rmm,       //!< Redundant Memory Mappings
    Colt,      //!< Coalesced TLBs
};

/** Printable name of a design. */
const char *designName(Design d);

/** Build the paging policy for @p d. */
std::unique_ptr<os::PagingPolicy>
makePolicy(Design d, double tps_threshold = 1.0);

/** Build the TLB-hierarchy geometry for @p d (Table I defaults). */
tlb::TlbHierarchyConfig designTlbConfig(Design d);

/** Everything one experiment run needs. */
struct RunOptions
{
    std::string workload;          //!< registry name
    Design design = Design::Thp;
    double scale = 1.0;            //!< workload scale factor
    uint64_t physBytes = 8ull << 30;
    double tpsThreshold = 1.0;
    bool smt = false;              //!< add a competing thread
    bool virtualized = false;      //!< two-dimensional page walks
    bool fiveLevel = false;
    bool noMmuCache = false;       //!< disable paging-structure caches
    bool tpsTlbSkewed = false;     //!< skewed-associative TPS TLB
    bool fragmented = false;       //!< pre-age physical memory
    os::FragmenterConfig fragmenter;
    sim::TlbTimingMode timing = sim::TlbTimingMode::Real;
    vm::AliasMode aliasMode = vm::AliasMode::Pointer;
    vm::SizeEncoding encoding = vm::SizeEncoding::Napot;
    uint64_t maxAccesses = ~0ull;
    uint64_t epochAccesses = 0;    //!< epoch-sample interval (0 = off)
    bool paranoid = false;         //!< full invariant check after the run
    uint64_t checkEvery = 0;       //!< in-run invariant-check interval
    bool referencePath = false;    //!< force the reference translate loop
    uint64_t chunkAccesses = 0;    //!< fast-path batch size (0 = default)
    double cellTimeoutSeconds = 0; //!< per-cell wall-clock budget (0 = none)
    //! Record physical-memory telemetry (obs/mem_telemetry.hh) into
    //! SimStats::mem.  Part of cell identity: it adds a "mem" section
    //! to the stat tree, so manifests distinguish telemetry runs.
    bool memTelemetry = false;
    //! Override the workload's nominal memory footprint in bytes
    //! (gups table, graph500 edge arrays, dbx1000 buffer pool);
    //! 0 = workload default.  When set, runExperiment() also grows the
    //! physical capacity to fit (physBytes acts as a floor), letting a
    //! terabyte-footprint cell run on a default command line.  Part of
    //! cell identity when nonzero.
    uint64_t footprintBytes = 0;
    //! Use the dense simulator state (fully materialized buddy free
    //! lists, resident page-table nodes) instead of the sparse default
    //! -- the oracle side of the sparse/dense golden tests.  Host-only
    //! representation switch: stats and manifests are bit-identical
    //! either way, so it is never serialized into manifests.
    bool denseState = false;
};

/** How one sweep cell ended (recorded in run manifests). */
enum class CellStatus
{
    Ok,       //!< ran to completion
    Failed,   //!< aborted with an error; stats are zeroed
    Timeout,  //!< exceeded its wall-clock budget; stats are zeroed
    Resumed,  //!< restored from a prior manifest, not re-run
};

/** Stable display name ("ok", "failed", "timeout", "resumed"). */
const char *cellStatusName(CellStatus status);

/**
 * The workload seed offset for one cell: a stable hash of (workload,
 * design, scale), so every cell in a sweep draws from an independent,
 * reproducible stream regardless of run order or thread placement.
 */
uint64_t runSeed(const RunOptions &opts);

/**
 * The canonical display label for one cell: "workload/design", with a
 * "/perfect-l1" or "/perfect-l2" suffix when the timing mode is not
 * Real.  Sweep-monitor spans, event-trace cells and run-manifest cells
 * all use this one label, so the three artifact kinds of a sweep join
 * on (label, seed) without heuristics.
 */
std::string cellLabel(const RunOptions &opts);

/**
 * Optional per-run observability attachments for runExperiment():
 * an event trace (obs/event_trace.hh), a simulator self-profile
 * (obs/profile.hh) and a physical-memory telemetry probe
 * (obs/mem_telemetry.hh), each recorded by the cell's engine when
 * non-null.  When RunOptions::memTelemetry is set and no external
 * probe is supplied, runExperiment() attaches a local one -- either
 * way the recorded data lands in SimStats::mem.
 */
struct RunHooks
{
    obs::EventTrace *trace = nullptr;
    obs::ProfileRegistry *profile = nullptr;
    obs::MemTelemetry *memTelemetry = nullptr;
};

/**
 * The exact EngineConfig runExperiment() assembles for @p opts,
 * including the workload-specific instruction mix -- exposed so run
 * manifests can record the hardware configuration a cell used.
 */
sim::EngineConfig makeEngineConfig(const RunOptions &opts);

/**
 * The physical capacity runExperiment() actually provisions for
 * @p opts: physBytes, grown when a footprint override needs more room
 * (the footprint itself plus headroom for page tables, reservations
 * and fragmentation).
 */
uint64_t effectivePhysBytes(const RunOptions &opts);

/**
 * Run one experiment configuration end to end.  Deterministic: the same
 * options always produce the same statistics, whether cells execute
 * serially or on an ExperimentRunner pool (seeds come from runSeed(),
 * never from global state).
 */
sim::SimStats runExperiment(const RunOptions &opts);

/** runExperiment() with observability hooks attached to the engine. */
sim::SimStats runExperiment(const RunOptions &opts,
                            const RunHooks &hooks);

/**
 * An assembled system for direct API use (the examples): mmap memory,
 * touch it, inspect the page table and TLBs.
 */
class TpsSystem
{
  public:
    /** Assembly knobs for direct use. */
    struct Config
    {
        Design design = Design::Tps;
        uint64_t physBytes = 1ull << 30;
        double tpsThreshold = 1.0;
        vm::AliasMode aliasMode = vm::AliasMode::Pointer;
        vm::SizeEncoding encoding = vm::SizeEncoding::Napot;
        bool denseState = false;  //!< dense simulator-state oracle
    };

    explicit TpsSystem(const Config &cfg);

    /** Map @p bytes of anonymous memory. */
    vm::Vaddr mmap(uint64_t bytes);

    /** Unmap a region returned by mmap. */
    void munmap(vm::Vaddr start);

    /**
     * Perform one memory access (translating through the TLBs and
     * walker, faulting and promoting as the policy dictates).
     * @return the physical address.
     */
    vm::Paddr access(vm::Vaddr va, bool write = false);

    /** Touch every base page of [start, start+bytes). */
    void touchRange(vm::Vaddr start, uint64_t bytes, bool write = true);

    os::PhysMemory &phys() { return *phys_; }
    os::AddressSpace &addressSpace() { return engine_->addressSpace(); }
    sim::Mmu &mmu() { return engine_->mmu(); }
    sim::Engine &engine() { return *engine_; }

  private:
    Config cfg_;
    std::unique_ptr<os::PhysMemory> phys_;
    std::unique_ptr<sim::Engine> engine_;
};

} // namespace tps::core

#endif // TPS_CORE_TPS_SYSTEM_HH
