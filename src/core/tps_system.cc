#include "core/tps_system.hh"

#include <algorithm>

#include "check/invariant_checker.hh"
#include "obs/mem_telemetry.hh"
#include "os/policy_rmm.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace tps::core {

const char *
designName(Design d)
{
    switch (d) {
      case Design::Base4k:
        return "base4k";
      case Design::Thp:
        return "thp";
      case Design::Tps:
        return "tps";
      case Design::TpsEager:
        return "tps-eager";
      case Design::Rmm:
        return "rmm";
      case Design::Colt:
        return "colt";
    }
    return "?";
}

const char *
cellStatusName(CellStatus status)
{
    switch (status) {
      case CellStatus::Ok:
        return "ok";
      case CellStatus::Failed:
        return "failed";
      case CellStatus::Timeout:
        return "timeout";
      case CellStatus::Resumed:
        return "resumed";
    }
    return "?";
}

std::unique_ptr<os::PagingPolicy>
makePolicy(Design d, double tps_threshold)
{
    switch (d) {
      case Design::Base4k:
        return std::make_unique<os::Base4kPolicy>();
      case Design::Thp:
        return std::make_unique<os::ThpPolicy>();
      case Design::Tps: {
        os::TpsPolicyConfig cfg;
        cfg.threshold = tps_threshold;
        return std::make_unique<os::TpsPolicy>(cfg);
      }
      case Design::TpsEager: {
        os::TpsPolicyConfig cfg;
        cfg.threshold = tps_threshold;
        cfg.eager = true;
        return std::make_unique<os::TpsPolicy>(cfg);
      }
      case Design::Rmm:
        return std::make_unique<os::RmmPolicy>();
      case Design::Colt:
        return std::make_unique<os::ColtPolicy>();
    }
    tps_panic("unhandled design");
}

tlb::TlbHierarchyConfig
designTlbConfig(Design d)
{
    tlb::TlbHierarchyConfig cfg;
    switch (d) {
      case Design::Tps:
      case Design::TpsEager:
        cfg.design = tlb::TlbDesign::Tps;
        break;
      case Design::Rmm:
        cfg.design = tlb::TlbDesign::Rmm;
        break;
      case Design::Colt:
        cfg.design = tlb::TlbDesign::Colt;
        break;
      default:
        cfg.design = tlb::TlbDesign::Baseline;
        break;
    }
    return cfg;
}

uint64_t
runSeed(const RunOptions &opts)
{
    return cellSeed(opts.workload, designName(opts.design), opts.scale);
}

std::string
cellLabel(const RunOptions &opts)
{
    std::string label = opts.workload + "/" + designName(opts.design);
    if (opts.timing == sim::TlbTimingMode::PerfectL2)
        label += "/perfect-l2";
    else if (opts.timing == sim::TlbTimingMode::PerfectL1)
        label += "/perfect-l1";
    return label;
}

sim::EngineConfig
makeEngineConfig(const RunOptions &opts)
{
    sim::EngineConfig ecfg;
    ecfg.mmu.tlb = designTlbConfig(opts.design);
    ecfg.mmu.walker.virtualized = opts.virtualized;
    ecfg.mmu.walker.fiveLevel = opts.fiveLevel;
    if (opts.noMmuCache)
        ecfg.mmu.mmuCache = vm::MmuCacheConfig{0, 0, 0};
    ecfg.mmu.tlb.tpsTlbSkewed = opts.tpsTlbSkewed;
    ecfg.addressSpace.aliasMode = opts.aliasMode;
    ecfg.addressSpace.encoding = opts.encoding;
    ecfg.addressSpace.denseState = opts.denseState;
    ecfg.timing = opts.timing;
    ecfg.maxAccesses = opts.maxAccesses;
    ecfg.epochAccesses = opts.epochAccesses;
    ecfg.checkEveryAccesses = opts.checkEvery;
    ecfg.timeoutSeconds = opts.cellTimeoutSeconds;
    ecfg.referencePath = opts.referencePath;
    if (opts.chunkAccesses != 0)
        ecfg.chunkAccesses = opts.chunkAccesses;
    // Workload construction is cheap (simulated memory is only mapped
    // at setup), so resolving the instruction mix here is fine.
    ecfg.cycle.instsPerAccess =
        workloads::makeWorkload(opts.workload, opts.scale, runSeed(opts),
                                opts.footprintBytes)
            ->info()
            .instsPerAccess;
    return ecfg;
}

uint64_t
effectivePhysBytes(const RunOptions &opts)
{
    if (opts.footprintBytes == 0)
        return opts.physBytes;
    // Fit the footprint itself (twice under SMT: two instances) plus
    // headroom for page tables, reservations and buddy fragmentation:
    // +1/8 covers eager-THP reservation slop and table frames with
    // room to spare, and the 1 GB floor keeps small overrides from
    // starving the allocator.
    uint64_t fp = opts.footprintBytes * (opts.smt ? 2 : 1);
    uint64_t need = fp + fp / 8 + (1ull << 30);
    return std::max(opts.physBytes, need);
}

sim::SimStats
runExperiment(const RunOptions &opts)
{
    return runExperiment(opts, RunHooks{});
}

sim::SimStats
runExperiment(const RunOptions &opts, const RunHooks &hooks)
{
    os::PhysMemory pm(effectivePhysBytes(opts), opts.denseState);

    std::optional<os::Fragmenter> fragmenter;
    if (opts.fragmented) {
        fragmenter.emplace(pm, opts.fragmenter);
        fragmenter->run();
    }

    sim::EngineConfig ecfg = makeEngineConfig(opts);
    uint64_t seed = runSeed(opts);
    auto primary = workloads::makeWorkload(opts.workload, opts.scale,
                                           seed, opts.footprintBytes);

    // Declared before the engine: the address-space destructor unmaps
    // surviving VMAs, and those unmaps still fire the telemetry hooks,
    // so the probe must outlive the engine.
    std::optional<obs::MemTelemetry> local_tel;

    sim::Engine engine(pm, makePolicy(opts.design, opts.tpsThreshold),
                       ecfg);
    // Hooks attach before run() so setup-time OS events (the
    // workload's mmaps) land in the trace at time 0.
    if (hooks.trace)
        engine.setEventTrace(hooks.trace);
    if (hooks.profile)
        engine.setProfile(hooks.profile);
    // Telemetry likewise attaches before setup so reservations created
    // by eager policies at mmap time get birth stamps.  An external
    // probe wins; otherwise a local one feeds SimStats::mem.
    obs::MemTelemetry *tel = hooks.memTelemetry;
    if (!tel && opts.memTelemetry)
        tel = &local_tel.emplace();
    if (tel)
        engine.setMemTelemetry(tel);
    engine.addWorkload(*primary);

    std::unique_ptr<workloads::Workload> competitor;
    if (opts.smt) {
        competitor = workloads::makeWorkload(
            opts.workload, opts.scale, seed + 1000,
            opts.footprintBytes);
        engine.addWorkload(*competitor);
    }
    sim::SimStats stats = engine.run();

    if (opts.paranoid) {
        // Full post-run sweep over the final state.  The fragmenter's
        // holdings come from its own ledger (not a usage snapshot), so
        // a frame leaked during the run cannot hide behind it.
        uint64_t exempt = 0;
        if (fragmenter) {
            for (const auto &[pfn, order] : fragmenter->held())
                exempt += 1ull << order;
        }
        check::InvariantChecker::Targets targets;
        targets.as = &engine.addressSpace();
        targets.phys = &pm;
        targets.tlb = &engine.mmu().tlbs();
        targets.exemptFrames = exempt;
        check::InvariantChecker(targets).throwIfBad();
    }
    return stats;
}

TpsSystem::TpsSystem(const Config &cfg)
    : cfg_(cfg), phys_(std::make_unique<os::PhysMemory>(cfg.physBytes,
                                                        cfg.denseState))
{
    sim::EngineConfig ecfg;
    ecfg.mmu.tlb = designTlbConfig(cfg.design);
    ecfg.addressSpace.aliasMode = cfg.aliasMode;
    ecfg.addressSpace.encoding = cfg.encoding;
    ecfg.addressSpace.denseState = cfg.denseState;
    engine_ = std::make_unique<sim::Engine>(
        *phys_, makePolicy(cfg.design, cfg.tpsThreshold), ecfg);
}

vm::Vaddr
TpsSystem::mmap(uint64_t bytes)
{
    return engine_->mmap(bytes);
}

void
TpsSystem::munmap(vm::Vaddr start)
{
    engine_->munmap(start);
}

vm::Paddr
TpsSystem::access(vm::Vaddr va, bool write)
{
    return engine_->mmu().access(va, write).pa;
}

void
TpsSystem::touchRange(vm::Vaddr start, uint64_t bytes, bool write)
{
    for (uint64_t off = 0; off < bytes; off += vm::kBasePageBytes)
        access(start + off, write);
}

} // namespace tps::core
