/**
 * @file
 * Tailored-size arithmetic: greedy aligned power-of-two decomposition
 * of arbitrary regions and TLB-entry/waste comparisons between page-size
 * vocabularies (the paper's 256 MB motivating example in Sec. I).
 */

#ifndef TPS_CORE_TPS_MATH_HH
#define TPS_CORE_TPS_MATH_HH

#include <cstdint>
#include <vector>

#include "util/bitops.hh"
#include "vm/addr.hh"

namespace tps::core {

/** One block of a decomposition: (start, log2 size). */
struct Block
{
    vm::Vaddr start;
    unsigned pageBits;

    bool
    operator==(const Block &o) const
    {
        return start == o.start && pageBits == o.pageBits;
    }
};

/**
 * Greedy aligned power-of-two decomposition of [start, start+length):
 * at each step take the largest power of two that divides the current
 * address and fits in the remainder, capped at 2^@p max_page_bits.
 * This is TPS's conservative exact-span policy (e.g. an aligned 28 KB
 * request becomes 16 KB + 8 KB + 4 KB).
 */
inline std::vector<Block>
decompose(vm::Vaddr start, uint64_t length, unsigned max_page_bits)
{
    std::vector<Block> blocks;
    while (length > 0) {
        uint64_t block = largestAlignedPow2(start, length);
        unsigned bits = log2Floor(block);
        if (bits > max_page_bits) {
            bits = max_page_bits;
            block = 1ull << bits;
        }
        blocks.push_back({start, bits});
        start += block;
        length -= block;
    }
    return blocks;
}

/**
 * TLB entries needed to map @p length bytes using only pages of
 * 2^@p page_bits (the conventional-size cost in the paper's tradeoff).
 */
constexpr uint64_t
entriesAtSize(uint64_t length, unsigned page_bits)
{
    return (length + (1ull << page_bits) - 1) >> page_bits;
}

/**
 * Internal fragmentation (wasted bytes) when @p length is mapped with
 * the aggressive single-page policy: one page of the smallest
 * power-of-two size >= length.
 */
constexpr uint64_t
roundUpWaste(uint64_t length)
{
    uint64_t bits = log2Ceil(length);
    return (1ull << bits) - length;
}

} // namespace tps::core

#endif // TPS_CORE_TPS_MATH_HH
