/**
 * @file
 * Parallel experiment sweeps: map a grid of RunOptions cells (or any
 * per-cell computation) onto a worker pool, preserving input order.
 *
 * Determinism contract: runExperiment() is a pure function of its
 * RunOptions -- every generator seed inside a cell derives from the
 * cell's own (workload, design, scale) identity via cellSeed(), never
 * from global state -- so the statistics a parallel sweep produces are
 * bit-identical to the same sweep run serially (or with any other
 * --jobs value).  tests/golden_stats_test.cc enforces this.
 */

#ifndef TPS_CORE_EXPERIMENT_RUNNER_HH
#define TPS_CORE_EXPERIMENT_RUNNER_HH

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/tps_system.hh"
#include "obs/event_trace.hh"
#include "obs/profile.hh"
#include "obs/sweep_monitor.hh"
#include "util/task_pool.hh"

namespace tps::core {

/** Fault-tolerance policy for guarded sweeps. */
struct SweepPolicy
{
    /**
     * Re-run a failed cell up to this many extra times with identical
     * options (and therefore an identical deterministic seed) before
     * recording it as failed.  Useful against per-cell timeouts on a
     * loaded machine; a deterministic failure will simply fail again.
     */
    unsigned retries = 0;

    /**
     * Allocate a per-cell EventTrace and record the cell's run into it
     * (CellOutcome::trace).  Per-worker by construction -- each cell's
     * trace is owned by the one task running that cell -- so the hot
     * path stays lock-free.  A retried attempt clears the trace first;
     * a failed cell keeps its partial trace for post-mortems.
     */
    bool eventTrace = false;

    /** Allocate a per-cell ProfileRegistry (CellOutcome::profile). */
    bool profile = false;
};

/** Outcome of one cell of a guarded sweep. */
struct CellOutcome
{
    sim::SimStats stats;     //!< zero-initialized unless status == Ok
    CellStatus status = CellStatus::Ok;
    std::string error;       //!< what() of the final failure
    std::string errorKind;   //!< SimError taxonomy name, or "exception"
    unsigned attempts = 1;   //!< executions performed
    double seconds = 0.0;    //!< wall time across all attempts
    //! the cell's event trace (SweepPolicy::eventTrace), else null
    std::unique_ptr<obs::EventTrace> trace;
    //! the cell's self-profile (SweepPolicy::profile), else null
    std::unique_ptr<obs::ProfileRegistry> profile;
};

class ExperimentRunner
{
  public:
    /** @param jobs  Worker threads; 0 = one per hardware thread. */
    explicit ExperimentRunner(unsigned jobs = 0) : pool_(jobs) {}

    unsigned jobs() const { return pool_.threads(); }

    /**
     * Attach a sweep monitor: every subsequently mapped cell is
     * wrapped in a trace span (and counts toward progress/ETA).  The
     * monitor must outlive the runner's sweeps; nullptr detaches.
     */
    void setMonitor(obs::SweepMonitor *monitor) { monitor_ = monitor; }
    obs::SweepMonitor *monitor() const { return monitor_; }

    /**
     * Run every cell through runExperiment() on the pool; the result
     * vector is index-aligned with @p cells.  The first cell failure
     * (if any) is rethrown in the caller's thread.  Spans are labeled
     * "workload/design".
     */
    std::vector<sim::SimStats> run(const std::vector<RunOptions> &cells);

    /**
     * Fault-isolated variant of run(): a cell that throws SimError (or
     * any std::exception) is captured as a Failed/Timeout outcome with
     * zeroed stats and the sweep continues; @p policy.retries re-runs a
     * failed cell with the same deterministic seed first.  Outcomes are
     * index-aligned with @p cells.  tps_panic/assert failures still
     * abort the process: they are programmer errors, not cell errors.
     */
    std::vector<CellOutcome>
    runGuarded(const std::vector<RunOptions> &cells,
               const SweepPolicy &policy = SweepPolicy{});

    /**
     * Order-preserving parallel map: `out[i] = fn(items[i])`, with the
     * calls distributed over the pool.  @p fn must be safe to invoke
     * concurrently from multiple threads (per-cell state only).
     * @p labelFn names each item's trace span: label(item, index).
     */
    template <typename T, typename Fn, typename LabelFn>
    auto
    map(const std::vector<T> &items, Fn fn, LabelFn labelFn)
        -> std::vector<std::invoke_result_t<Fn, const T &>>
    {
        using R = std::invoke_result_t<Fn, const T &>;
        obs::SweepMonitor *monitor = monitor_;
        if (monitor)
            monitor->addPlanned(items.size());
        std::vector<std::future<R>> futures;
        futures.reserve(items.size());
        for (size_t i = 0; i < items.size(); ++i) {
            const T &item = items[i];
            std::string label = labelFn(item, i);
            futures.push_back(pool_.submit(
                [fn, &item, monitor, label = std::move(label)] {
                    obs::SweepMonitor::Scope span(monitor, label);
                    return fn(item);
                }));
        }
        std::vector<R> out;
        out.reserve(items.size());
        for (auto &f : futures)
            out.push_back(f.get());
        return out;
    }

    /** map() with spans labeled "cell <index>". */
    template <typename T, typename Fn>
    auto
    map(const std::vector<T> &items, Fn fn)
        -> std::vector<std::invoke_result_t<Fn, const T &>>
    {
        return map(items, fn, [](const T &, size_t i) {
            return "cell " + std::to_string(i);
        });
    }

  private:
    util::TaskPool pool_;
    obs::SweepMonitor *monitor_ = nullptr;
};

} // namespace tps::core

#endif // TPS_CORE_EXPERIMENT_RUNNER_HH
