/**
 * @file
 * tps-report: byte-stable cross-design comparison reports from run
 * manifests.
 *
 *   tps-report <manifest.json> [more-manifests...]
 *              [--csv=<path>] [--md=<path>] [--baseline=<design>]
 *
 * Joins one or more (possibly partial) tps-run-manifest files into a
 * single report: per-design MPKI and speedup tables, fragmentation
 * index / contiguity / page-size-census series for cells recorded
 * with --mem-telemetry, reservation-lifecycle p50/p95/p99 columns,
 * and a holes section listing every (workload, design) grid cell that
 * is missing, failed or timed out -- so a sharded or interrupted
 * sweep's coverage is visible at a glance.
 *
 * --csv writes the long-format CSV, --md the Markdown document; with
 * neither, the Markdown goes to stdout.  Output is a pure function of
 * the manifest contents (see obs/report.hh), so fixed inputs always
 * produce byte-identical reports.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/report.hh"
#include "util/logging.hh"
#include "util/sim_error.hh"

using namespace tps;

namespace {

struct Args
{
    std::vector<std::string> manifests;
    std::string csvPath;
    std::string mdPath;
    obs::ReportOptions report;
};

Args
parseArgs(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--csv=", 6) == 0) {
            args.csvPath = arg + 6;
        } else if (std::strncmp(arg, "--md=", 5) == 0) {
            args.mdPath = arg + 5;
        } else if (std::strncmp(arg, "--baseline=", 11) == 0) {
            args.report.baselineDesign = arg + 11;
        } else if (std::strcmp(arg, "--help") == 0) {
            std::printf(
                "usage: tps-report <manifest.json> [more...] "
                "[--csv=<path>] [--md=<path>] "
                "[--baseline=<design>]\n");
            std::exit(0);
        } else if (arg[0] == '-') {
            tps_fatal("unknown option '%s' (try --help)", arg);
        } else {
            args.manifests.push_back(arg);
        }
    }
    if (args.manifests.empty())
        tps_fatal("no manifests given (try --help)");
    return args;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parseArgs(argc, argv);

    std::vector<obs::Json> manifests;
    for (const std::string &path : args.manifests) {
        try {
            manifests.push_back(obs::readJsonFile(path));
        } catch (const SimError &e) {
            tps_fatal("cannot read manifest %s: %s", path.c_str(),
                      e.what());
        }
    }

    obs::Report rep;
    try {
        rep = obs::buildReport(manifests, args.manifests, args.report);
    } catch (const SimError &e) {
        tps_fatal("%s", e.what());
    }

    if (!args.csvPath.empty()) {
        std::FILE *f = std::fopen(args.csvPath.c_str(), "wb");
        if (!f)
            tps_fatal("cannot write %s", args.csvPath.c_str());
        std::fwrite(rep.csv.data(), 1, rep.csv.size(), f);
        std::fclose(f);
        std::printf("wrote %s\n", args.csvPath.c_str());
    }
    if (!args.mdPath.empty()) {
        std::FILE *f = std::fopen(args.mdPath.c_str(), "wb");
        if (!f)
            tps_fatal("cannot write %s", args.mdPath.c_str());
        std::fwrite(rep.markdown.data(), 1, rep.markdown.size(), f);
        std::fclose(f);
        std::printf("wrote %s\n", args.mdPath.c_str());
    }
    if (args.csvPath.empty() && args.mdPath.empty())
        std::fputs(rep.markdown.c_str(), stdout);

    std::fprintf(stderr, "%zu cells, %zu holes\n", rep.cells,
                 rep.holes);
    return 0;
}
