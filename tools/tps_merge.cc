/**
 * @file
 * tps-merge: join sharded partial run manifests into the canonical
 * byte-stable manifest, and watch live shard heartbeats.
 *
 *   tps-merge <partial.json>... [--out=<path>] [--json]
 *             [--require-complete]
 *   tps-merge --watch=<dir> [--interval=<sec>] [--once] [--json]
 *
 * Merge mode verifies that the partials come from the same sweep
 * (bench, shard count, grid fingerprint and planned grid must agree),
 * rejects overlapping or foreign partials, resolves retried cells
 * first-ok-wins, and reports holes -- missing, failed or timed-out
 * cells -- with shard attribution.  The merged manifest is
 * byte-identical to the pure (host-free) manifest of the equivalent
 * unsharded run; with a single unsharded input it acts as a pure-form
 * canonicalizer.  --require-complete turns any hole or missing shard
 * into a non-zero exit for CI gating.
 *
 * Watch mode aggregates the tps-heartbeat files sharded sweeps write
 * (--heartbeat=<path>) from a shared directory into one cross-shard
 * progress/health view, flagging stalled or dead shards.  With --once
 * it prints a single snapshot (JSON with --json) and exits; otherwise
 * it refreshes until every expected shard reports finished.
 */

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hh"
#include "obs/shard.hh"
#include "util/logging.hh"
#include "util/sim_error.hh"

using namespace tps;

namespace {

struct Cli
{
    std::vector<std::string> inputs;
    std::string outPath;
    std::string watchDir;
    double intervalSeconds = 2.0;
    bool json = false;
    bool once = false;
    bool requireComplete = false;
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: tps-merge <partial.json>... [--out=<path>] [--json] "
        "[--require-complete]\n"
        "       tps-merge --watch=<dir> [--interval=<sec>] [--once] "
        "[--json]\n");
}

/** Read and parse one manifest/heartbeat; tps_fatal on any problem. */
obs::Json
readJsonOrDie(const std::string &path)
{
    try {
        return obs::readJsonFile(path);
    } catch (const SimError &e) {
        tps_fatal("%s", e.what());
    }
}

// ---------------------------------------------------------------------
// Merge mode.
// ---------------------------------------------------------------------

void
printHoles(const obs::MergeResult &res)
{
    for (const obs::MergeHole &hole : res.holes) {
        std::fprintf(stderr, "  hole: %s", hole.label.c_str());
        if (hole.seed != 0) {
            std::fprintf(stderr, " (seed %llu)",
                         static_cast<unsigned long long>(hole.seed));
        }
        std::fprintf(stderr, " %s", hole.status.c_str());
        if (hole.shard >= 0)
            std::fprintf(stderr, ", owned by shard %d", hole.shard);
        if (!hole.source.empty())
            std::fprintf(stderr, ", recorded in %s", hole.source.c_str());
        std::fprintf(stderr, "\n");
    }
}

obs::Json
mergeReportJson(const obs::MergeResult &res)
{
    obs::Json j = obs::Json::object();
    j["format"] = std::string("tps-merge-report");
    j["bench"] = res.bench;
    j["shardCount"] = res.shardCount;
    j["gridFingerprint"] = res.gridFingerprint;
    obs::Json present = obs::Json::array();
    for (unsigned s : res.shardsPresent)
        present.push(uint64_t(s));
    j["shardsPresent"] = std::move(present);
    obs::Json missing = obs::Json::array();
    for (unsigned s : res.shardsMissing)
        missing.push(uint64_t(s));
    j["shardsMissing"] = std::move(missing);
    j["cells"] = uint64_t(res.cells);
    j["okCells"] = uint64_t(res.okCells);
    j["duplicates"] = uint64_t(res.duplicates);
    obs::Json holes = obs::Json::array();
    for (const obs::MergeHole &hole : res.holes) {
        obs::Json h = obs::Json::object();
        h["label"] = hole.label;
        h["seed"] = hole.seed;
        h["status"] = hole.status;
        h["shard"] = int64_t(hole.shard);
        h["source"] = hole.source;
        holes.push(std::move(h));
    }
    j["holes"] = std::move(holes);
    j["complete"] = res.holes.empty() && res.shardsMissing.empty();
    return j;
}

int
runMerge(const Cli &cli)
{
    std::vector<obs::Json> manifests;
    manifests.reserve(cli.inputs.size());
    for (const std::string &path : cli.inputs)
        manifests.push_back(readJsonOrDie(path));

    obs::MergeResult res;
    try {
        res = obs::mergeManifests(manifests, cli.inputs);
    } catch (const SimError &e) {
        tps_fatal("%s", e.what());
    }

    if (!cli.outPath.empty()) {
        obs::writeJsonFile(cli.outPath, res.manifest);
    } else if (!cli.json) {
        // Canonical manifest to stdout, report to stderr.
        std::string bytes = res.manifest.dump(2);
        std::fwrite(bytes.data(), 1, bytes.size(), stdout);
        std::fputc('\n', stdout);
    }

    if (cli.json) {
        std::string bytes = mergeReportJson(res).dump(2);
        std::fwrite(bytes.data(), 1, bytes.size(), stdout);
        std::fputc('\n', stdout);
    } else {
        std::fprintf(stderr,
                     "merged %zu input(s): bench %s, %zu cells "
                     "(%zu ok), %zu duplicate cop%s resolved\n",
                     cli.inputs.size(), res.bench.c_str(), res.cells,
                     res.okCells, res.duplicates,
                     res.duplicates == 1 ? "y" : "ies");
        if (res.shardCount > 1) {
            std::fprintf(stderr, "shards present: %zu of %u\n",
                         res.shardsPresent.size(), res.shardCount);
        }
        for (unsigned s : res.shardsMissing) {
            std::fprintf(stderr, "  shard %u contributed no manifest\n",
                         s);
        }
        if (!res.holes.empty()) {
            std::fprintf(stderr, "%zu hole(s):\n", res.holes.size());
            printHoles(res);
        }
        if (!cli.outPath.empty()) {
            std::fprintf(stderr, "wrote merged manifest to %s\n",
                         cli.outPath.c_str());
        }
    }

    bool incomplete = !res.holes.empty() || !res.shardsMissing.empty();
    if (cli.requireComplete && incomplete) {
        std::fprintf(stderr,
                     "merge incomplete (--require-complete): %zu "
                     "hole(s), %zu missing shard(s)\n",
                     res.holes.size(), res.shardsMissing.size());
        return 1;
    }
    return 0;
}

// ---------------------------------------------------------------------
// Watch mode.
// ---------------------------------------------------------------------

/** All parseable JSON files in @p dir (heartbeat filter comes later). */
void
scanHeartbeats(const std::string &dir, std::vector<obs::Json> *beats,
               std::vector<std::string> *sources)
{
    beats->clear();
    sources->clear();
    DIR *d = opendir(dir.c_str());
    if (!d)
        tps_fatal("cannot open watch directory %s", dir.c_str());
    std::vector<std::string> names;
    while (struct dirent *ent = readdir(d)) {
        std::string name = ent->d_name;
        if (name.size() > 5 &&
            name.compare(name.size() - 5, 5, ".json") == 0) {
            names.push_back(name);
        }
    }
    closedir(d);
    std::sort(names.begin(), names.end());
    for (const std::string &name : names) {
        std::string path = dir + "/" + name;
        try {
            beats->push_back(obs::readJsonFile(path));
            sources->push_back(path);
        } catch (const SimError &) {
            // A file mid-write or foreign JSON is not an error; the
            // next scan will pick it up.
        }
    }
}

int
runWatch(const Cli &cli)
{
    bool tty = isatty(fileno(stdout));
    while (true) {
        std::vector<obs::Json> beats;
        std::vector<std::string> sources;
        scanHeartbeats(cli.watchDir, &beats, &sources);
        uint64_t now =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count();
        obs::HealthView view =
            obs::buildHealthView(beats, sources, now);

        if (cli.json) {
            std::string bytes = view.toJson().dump(2);
            std::fwrite(bytes.data(), 1, bytes.size(), stdout);
            std::fputc('\n', stdout);
        } else {
            if (tty && !cli.once)
                std::fputs("\033[H\033[2J", stdout);
            if (view.shards.empty()) {
                std::fprintf(stdout, "no heartbeats in %s yet\n",
                             cli.watchDir.c_str());
            } else {
                std::fputs(view.render().c_str(), stdout);
            }
        }
        std::fflush(stdout);

        if (cli.once)
            return view.shards.empty() ? 1 : 0;
        if (view.allFinished) {
            std::fprintf(stderr, "all %u shard(s) finished\n",
                         view.shardCount);
            return 0;
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(cli.intervalSeconds));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--out=", 6) == 0) {
            cli.outPath = arg + 6;
            if (cli.outPath.empty())
                tps_fatal("--out needs a path");
        } else if (std::strncmp(arg, "--watch=", 8) == 0) {
            cli.watchDir = arg + 8;
            if (cli.watchDir.empty())
                tps_fatal("--watch needs a directory");
        } else if (std::strncmp(arg, "--interval=", 11) == 0) {
            char *end = nullptr;
            cli.intervalSeconds = std::strtod(arg + 11, &end);
            if (end == arg + 11 || *end != '\0' ||
                cli.intervalSeconds <= 0) {
                tps_fatal("bad --interval value '%s'", arg + 11);
            }
        } else if (std::strcmp(arg, "--json") == 0) {
            cli.json = true;
        } else if (std::strcmp(arg, "--once") == 0) {
            cli.once = true;
        } else if (std::strcmp(arg, "--require-complete") == 0) {
            cli.requireComplete = true;
        } else if (std::strcmp(arg, "--help") == 0) {
            usage();
            return 0;
        } else if (arg[0] == '-' && arg[1] == '-') {
            tps_fatal("unknown option '%s' (try --help)", arg);
        } else {
            cli.inputs.push_back(arg);
        }
    }

    if (!cli.watchDir.empty()) {
        if (!cli.inputs.empty())
            tps_fatal("--watch takes no manifest arguments");
        return runWatch(cli);
    }
    if (cli.inputs.empty())
        tps_fatal("no input manifests (usage: tps-merge "
                  "<partial.json>... [--out=<path>])");
    return runMerge(cli);
}
