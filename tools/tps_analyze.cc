/**
 * @file
 * tps-analyze: offline miss-attribution reports from event traces.
 *
 *   tps-analyze summary <trace>
 *       List every cell in the container (label, seed, event counts).
 *
 *   tps-analyze report <trace> [--cell=<label>] [--seed=<n>]
 *                      [--manifest=<path>] [--top=<n>] [--json]
 *       Full attribution report for one cell: measured totals, the
 *       residual-miss table (which page sizes the surviving misses
 *       charge), per-VMA breakdown, top-N hot 4 KB regions, and
 *       walk-latency / miss-interarrival histograms.  --manifest joins
 *       the trace with a tps-run-manifest by (label, seed) and verifies
 *       the trace's measured miss count against the manifest's
 *       mmu.l1.misses counter -- a mismatch is a hard error.
 *
 *   tps-analyze dump <trace> [--cell=<label>] [--seed=<n>]
 *       Print the raw event stream as text.
 */

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/event_trace.hh"
#include "obs/json.hh"
#include "obs/trace_analyze.hh"
#include "util/logging.hh"
#include "util/sim_error.hh"

using namespace tps;

namespace {

struct Args
{
    std::string command;
    std::string tracePath;
    std::string manifestPath;
    std::string cell;
    bool haveSeed = false;
    uint64_t seed = 0;
    size_t top = 20;
    bool json = false;
};

bool
parseU64(const char *s, uint64_t *out)
{
    if (*s == '\0')
        return false;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0')
        return false;
    *out = v;
    return true;
}

void
usage()
{
    std::printf(
        "usage: tps-analyze <summary|report|dump> <trace-file>\n"
        "  [--cell=<label>] [--seed=<n>] [--manifest=<path>]\n"
        "  [--top=<n>] [--json]\n");
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    std::vector<const char *> positional;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--cell=", 7) == 0) {
            args.cell = arg + 7;
        } else if (std::strncmp(arg, "--seed=", 7) == 0) {
            if (!parseU64(arg + 7, &args.seed))
                tps_fatal("bad --seed value '%s'", arg + 7);
            args.haveSeed = true;
        } else if (std::strncmp(arg, "--manifest=", 11) == 0) {
            args.manifestPath = arg + 11;
        } else if (std::strncmp(arg, "--top=", 6) == 0) {
            uint64_t top = 0;
            if (!parseU64(arg + 6, &top) || top == 0)
                tps_fatal("bad --top value '%s'", arg + 6);
            args.top = static_cast<size_t>(top);
        } else if (std::strcmp(arg, "--json") == 0) {
            args.json = true;
        } else if (std::strcmp(arg, "--help") == 0) {
            usage();
            std::exit(0);
        } else if (arg[0] == '-') {
            tps_fatal("unknown option '%s' (try --help)", arg);
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() != 2) {
        tps_fatal("expected <summary|report|dump> <trace-file>, got %zu "
                  "positional argument(s) (try --help)",
                  positional.size());
    }
    args.command = positional[0];
    args.tracePath = positional[1];
    return args;
}

/** Select the cell the flags name (the only cell when unambiguous). */
const obs::TraceCell &
selectCell(const obs::TraceFile &file, const Args &args)
{
    if (file.cells.empty())
        tps_fatal("%s contains no cells", args.tracePath.c_str());
    std::vector<const obs::TraceCell *> matches;
    for (const obs::TraceCell &cell : file.cells) {
        if (!args.cell.empty() && cell.label != args.cell)
            continue;
        if (args.haveSeed && cell.seed != args.seed)
            continue;
        matches.push_back(&cell);
    }
    if (matches.empty())
        tps_fatal("no cell matches --cell=%s%s", args.cell.c_str(),
                  args.haveSeed ? " with that --seed" : "");
    if (matches.size() > 1) {
        std::fprintf(stderr, "ambiguous cell; candidates:\n");
        for (const obs::TraceCell *cell : matches)
            std::fprintf(stderr, "  --cell=%s --seed=%" PRIu64 "\n",
                         cell->label.c_str(), cell->seed);
        tps_fatal("pick one with --cell/--seed");
    }
    return *matches[0];
}

void
cmdSummary(const obs::TraceFile &file, const Args &args)
{
    if (file.cells.empty())
        tps_fatal("%s contains no cells", args.tracePath.c_str());
    std::printf("%-40s %20s %12s %12s %12s\n", "cell", "seed", "events",
                "misses", "walks");
    for (const obs::TraceCell &cell : file.cells) {
        obs::CellAnalysis a = obs::analyzeCell(cell);
        std::printf("%-40s %20" PRIu64 " %12zu %12" PRIu64
                    " %12" PRIu64 "\n",
                    cell.label.c_str(), cell.seed, cell.events.size(),
                    a.tlbMisses, a.walkEvents);
    }
}

void
cmdDump(const obs::TraceCell &cell)
{
    std::printf("# cell %s seed %" PRIu64 " (%zu events)\n",
                cell.label.c_str(), cell.seed, cell.events.size());
    for (const obs::Event &e : cell.events) {
        std::printf("%12" PRIu64 " %-14s va=0x%" PRIx64 " a=%" PRIu64
                    " b=%" PRIu64 " c=%" PRIu64 " d=%" PRIu64 "\n",
                    e.time, obs::eventTypeName(e.type), e.va, e.a, e.b,
                    e.c, e.d);
    }
}

void
printHistogram(const char *name, const Histogram &h)
{
    if (h.total() == 0) {
        std::printf("%s: empty\n", name);
        return;
    }
    std::printf("%s: n=%" PRIu64 " p50=%" PRIu64 " p95=%" PRIu64
                " p99=%" PRIu64,
                name, h.total(), h.p50(), h.p95(), h.p99());
    if (h.underflow() || h.overflow())
        std::printf(" underflow=%" PRIu64 " overflow=%" PRIu64,
                    h.underflow(), h.overflow());
    std::printf("\n");
}

void
cmdReport(const obs::TraceCell &cell, const Args &args)
{
    obs::CellAnalysis a = obs::analyzeCell(cell);

    const obs::Json *mcell = nullptr;
    obs::Json manifest;
    if (!args.manifestPath.empty()) {
        try {
            manifest = obs::readJsonFile(args.manifestPath);
        } catch (const SimError &e) {
            tps_fatal("%s", e.what());
        }
        mcell = obs::findManifestCell(manifest, a.label, a.seed);
        if (!mcell)
            tps_fatal("manifest %s has no cell %s seed %" PRIu64,
                      args.manifestPath.c_str(), a.label.c_str(),
                      a.seed);
    }
    // Throws on a trace/manifest miss-count mismatch.
    std::vector<obs::ResidualRow> residual =
        obs::residualMisses(a, mcell);

    if (args.json) {
        obs::Json j = obs::analysisToJson(a, args.top);
        obs::Json res = obs::Json::array();
        for (const obs::ResidualRow &row : residual) {
            obs::Json r = obs::Json::object();
            r["pageBits"] = row.pageBits;
            r["misses"] = row.misses;
            r["shareOfMisses"] = row.shareOfMisses;
            r["walkRefShare"] = row.walkRefShare;
            res.push(std::move(r));
        }
        j["residualMisses"] = std::move(res);
        j["manifestVerified"] = mcell != nullptr;
        std::printf("%s\n", j.dump(2).c_str());
        return;
    }

    std::printf("== %s (seed %" PRIu64 ") ==\n", a.label.c_str(),
                a.seed);
    std::printf("measured accesses:     %" PRIu64 "\n", a.accesses);
    std::printf("L1 TLB misses:         %" PRIu64 "%s\n", a.tlbMisses,
                mcell ? "  (matches manifest mmu.l1.misses)" : "");
    std::printf("  L2/range hits:       %" PRIu64 "\n", a.l2Hits);
    std::printf("  full walks:          %" PRIu64 "\n", a.walks);
    std::printf("walk memory refs:      %" PRIu64 "\n", a.walkMemRefs);
    std::printf("walk faults:           %" PRIu64 "\n", a.walkFaults);
    std::printf("os: maps=%" PRIu64 " unmaps=%" PRIu64 " faults=%" PRIu64
                " reserves=%" PRIu64 " promotes=%" PRIu64
                " compact-moves=%" PRIu64 "\n",
                a.osMaps, a.osUnmaps, a.osFaults, a.osReserves,
                a.osPromotes, a.osCompactMoves);
    std::printf("tlb: shootdowns=%" PRIu64 " flushes=%" PRIu64 "\n\n",
                a.tlbShootdowns, a.tlbFlushes);

    std::printf("residual misses by page size:\n");
    std::printf("  %10s %12s %8s %10s\n", "page", "misses", "share",
                "walk-refs");
    for (const obs::ResidualRow &row : residual) {
        std::string page =
            row.pageBits ? std::to_string(1ull << (row.pageBits - 10)) +
                               " KiB"
                         : "unknown";
        std::printf("  %10s %12" PRIu64 " %7.2f%% %9.2f%%\n",
                    page.c_str(), row.misses,
                    100.0 * row.shareOfMisses,
                    100.0 * row.walkRefShare);
    }
    std::printf("\n");

    std::printf("misses by VMA:\n");
    std::printf("  %6s %18s %14s %12s %12s\n", "vma", "base", "bytes",
                "misses", "walks");
    for (const obs::VmaBreakdown &v : a.perVma) {
        if (v.misses == 0)
            continue;
        std::printf("  %6" PRIu64 " 0x%016" PRIx64 " %14" PRIu64
                    " %12" PRIu64 " %12" PRIu64 "\n",
                    v.vmaId, v.base, v.bytes, v.misses, v.walks);
    }
    std::printf("\n");

    size_t n = std::min(args.top, a.hotRegions.size());
    std::printf("top %zu hot 4 KiB regions (of %zu with misses):\n", n,
                a.hotRegions.size());
    std::printf("  %18s %12s %12s\n", "region", "misses", "walks");
    for (size_t i = 0; i < n; ++i) {
        const obs::HotRegion &r = a.hotRegions[i];
        std::printf("  0x%016" PRIx64 " %12" PRIu64 " %12" PRIu64 "\n",
                    r.base, r.misses, r.walks);
    }
    std::printf("\n");

    printHistogram("walk latency (cycles)", a.walkLatency);
    printHistogram("miss interarrival (accesses)", a.missInterarrival);
    printHistogram("walk MMU-cache hit depth", a.walkHitDepth);
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parseArgs(argc, argv);
    // Library code throws SimError on unreadable or malformed inputs;
    // a CLI surfaces that as the standard one-line fatal, never as an
    // uncaught-exception abort.
    try {
        obs::TraceFile file = obs::readTraceFile(args.tracePath);

        if (args.command == "summary") {
            cmdSummary(file, args);
        } else if (args.command == "dump") {
            cmdDump(selectCell(file, args));
        } else if (args.command == "report") {
            cmdReport(selectCell(file, args), args);
        } else {
            tps_fatal("unknown command '%s' (try --help)",
                      args.command.c_str());
        }
    } catch (const SimError &e) {
        tps_fatal("%s", e.what());
    }
    return 0;
}
